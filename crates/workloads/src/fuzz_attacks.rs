//! Randomized structural variants of the attack battery.
//!
//! The hand-written kernels behind [`crate::attack_battery`] are eleven
//! fixed points in a large space of equivalent attacks; a
//! taint-propagation bug that happens to dodge those exact shapes would
//! slip past the battery.
//! This module generates *variants* of each scenario family — shuffled
//! filler ops, varied misprediction-window lengths (divide-chain depth),
//! varied prefetch-burst lengths and probe geometries, shuffled eviction-set
//! priming orders, varied MSHR-burst sizes, varied shadow-nesting depth,
//! and random secrets — while preserving each family's documented leak
//! contract (`expected_slots` / `allowed_slots` / `min_model`). The
//! top-level `tests/attack_fuzz.rs` property test runs hundreds of these
//! under every scheme, both schedulers, and both threat models.
//!
//! Filler ops only ever touch the scratch registers `x16`–`x19`, which no
//! kernel uses for its taint chain, so insertion points are structurally
//! free: fillers compete for issue slots but cannot carry or launder taint.
//!
//! Generation is deterministic in the seed (the offline `rand` shim is a
//! fixed xoshiro256++), so any failing variant is reproducible from the
//! case number alone.

use crate::attacks::{
    AttackKernel, ChannelKind, PredictorParams, ProbeChannel, BTB_ATTACKER_PC, BTB_VICTIM_PC,
    CONT_BASE, CONT_STRIDE, EVSET_PRIME_BASE, EVSET_SET_OFFSET, EVSET_SET_STRIDE,
    EVSET_TARGET_BASE, EVSET_WAYS, PHT_PC_BASE, PHT_WINDOW_PC, PROBE_BASE, PROBE_ENTRIES,
    PROBE_STRIDE,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sb_core::ThreatModel;
use sb_isa::{ArchReg, MicroOp, OpClass, TraceBuilder};

/// Number of scenario families [`fuzz_battery`] draws from.
pub const FAMILIES: usize = 11;

fn x(n: u8) -> ArchReg {
    ArchReg::int(n)
}

/// Scratch registers reserved for filler ops (disjoint from every
/// family's taint chain and address registers).
const SCRATCH: [u8; 4] = [16, 17, 18, 19];

struct Fz {
    rng: SmallRng,
}

impl Fz {
    fn new(seed: u64) -> Self {
        Fz {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn secret(&mut self) -> usize {
        self.rng.gen_range(0..PROBE_ENTRIES)
    }

    /// A random filler compute op on scratch registers only.
    fn filler_op(&mut self) -> MicroOp {
        let dst = SCRATCH[self.rng.gen_range(0..SCRATCH.len())];
        let src = if self.rng.gen_bool(0.5) {
            Some(x(SCRATCH[self.rng.gen_range(0..SCRATCH.len())]))
        } else {
            None
        };
        if self.rng.gen_bool(0.25) {
            MicroOp::compute(OpClass::IntMul, x(dst), src, None)
        } else {
            MicroOp::alu(x(dst), src, None)
        }
    }

    /// Appends `0..=max` filler ops to the correct path.
    fn fill(&mut self, b: &mut TraceBuilder, max: usize) {
        for _ in 0..self.rng.gen_range(0..max + 1) {
            let op = self.filler_op();
            b.push(op);
        }
    }

    /// Appends `0..=max` filler ops to a wrong-path block under
    /// construction.
    fn wp_fill(&mut self, ops: &mut Vec<MicroOp>, max: usize) {
        for _ in 0..self.rng.gen_range(0..max + 1) {
            ops.push(self.filler_op());
        }
    }

    /// The shared misprediction prologue: optional fillers, a warm line
    /// for the transient secret read, a cold bounds-check operand plus a
    /// variable-length divide chain (the window length knob), then the
    /// mispredicted branch. Returns the branch's trace index.
    fn window_prologue(&mut self, b: &mut TraceBuilder, warm: u64, cold: u64) -> usize {
        self.fill(b, 2);
        b.load(x(6), x(28), warm, 8);
        self.fill(b, 2);
        b.load(x(9), x(28), cold, 8);
        for _ in 0..self.rng.gen_range(1..4usize) {
            b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        }
        b.branch(Some(x(9)), None, true, true)
    }
}

/// A spectre-v1 variant: fillers everywhere, variable window length.
#[must_use]
pub fn spectre_v1_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x51);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("spectre-v1-fz");
    let br = fz.window_prologue(&mut b, 0x2000_0000, 0x3000_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(
        x(4),
        x(3),
        PROBE_BASE + secret as u64 * PROBE_STRIDE,
        8,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 3);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// A prefetch-amplification variant: burst length 3–5 (the train-count
/// knob — the stride detectors need three accesses, longer bursts push
/// the run-ahead deeper), variable window, fillers.
#[must_use]
pub fn spectre_v1_prefetch_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x9F);
    let secret = fz.secret();
    let burst = fz.rng.gen_range(3..6usize);
    let mut b = TraceBuilder::new("spectre-v1-prefetch-fz");
    let br = fz.window_prologue(&mut b, 0x2000_0000, 0x3000_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    for k in 0..burst {
        wp.push(MicroOp::load(
            x(4 + (k as u8 % 3)),
            x(3),
            crate::attacks::AMP_BASE + (secret + k) as u64 * crate::attacks::AMP_STRIDE,
            8,
        ));
    }
    b.wrong_path(br, wp);
    fz.fill(&mut b, 3);
    b.alu(x(8), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::line_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        // `burst` direct lines plus the first deterministic run-ahead
        // line; the L2 degree-4 prefetcher bounds the reachable set at
        // 4 lines past the last direct access.
        expected_slots: (secret..=secret + burst).collect(),
        allowed_slots: (secret..=secret + burst + 3).collect(),
        predictor: None,
    }
}

/// A speculative-store-bypass variant: variable store-address delay,
/// fillers between the store and the bypassing load.
#[must_use]
pub fn ssb_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x4B);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("ssb-fz");
    const SLOT: u64 = 0x2100_0000;
    fz.fill(&mut b, 2);
    b.load(x(6), x(28), SLOT, 8);
    b.load(x(9), x(28), 0x3100_0000, 8);
    for _ in 0..fz.rng.gen_range(1..4usize) {
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
    }
    b.store(x(9), x(28), SLOT, 8);
    fz.fill(&mut b, 2);
    b.load(x(1), x(27), SLOT, 8);
    b.alu(x(3), Some(x(1)), None);
    b.load(x(4), x(3), PROBE_BASE + secret as u64 * PROBE_STRIDE, 8);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// A store→load-forwarding-transmitter variant.
#[must_use]
pub fn store_forward_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x3C);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("store-forward-fz");
    const BUF: u64 = 0x2300_0000;
    let br = fz.window_prologue(&mut b, 0x2200_0000, 0x3200_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2200_0000, 8));
    fz.wp_fill(&mut wp, 1);
    wp.push(MicroOp::store(x(28), x(1), BUF, 8));
    fz.wp_fill(&mut wp, 1);
    wp.push(MicroOp::load(x(2), x(27), BUF, 8));
    wp.push(MicroOp::alu(x(3), Some(x(2)), None));
    wp.push(MicroOp::load(
        x(4),
        x(3),
        PROBE_BASE + secret as u64 * PROBE_STRIDE,
        8,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// A nested-speculation variant: 1–3 nested correctly-predicted branches
/// between the secret and the transmit (the shadow-nesting-depth knob).
#[must_use]
pub fn nested_speculation_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x7E);
    let secret = fz.secret();
    let depth = fz.rng.gen_range(1..4usize);
    let mut b = TraceBuilder::new("nested-speculation-fz");
    let br = fz.window_prologue(&mut b, 0x2000_0000, 0x3000_0000);
    let mut wp = Vec::new();
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    wp.push(MicroOp::compute(OpClass::IntDiv, x(3), Some(x(1)), None));
    for _ in 0..depth {
        wp.push(MicroOp::branch(Some(x(3)), None, true, false));
        fz.wp_fill(&mut wp, 1);
    }
    wp.push(MicroOp::alu(x(4), Some(x(3)), None));
    wp.push(MicroOp::load(
        x(5),
        x(4),
        PROBE_BASE + secret as u64 * PROBE_STRIDE,
        8,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(8), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// A prime+probe variant: way 0 of every set is always primed first (it
/// is the documented LRU victim and the channel slot), the remaining way
/// order is shuffled per variant.
#[must_use]
pub fn prime_probe_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0xE5);
    let secret = fz.secret();
    // Fisher-Yates over ways 1..8; way 0 stays first.
    let mut ways: Vec<u64> = (1..EVSET_WAYS as u64).collect();
    for i in (1..ways.len()).rev() {
        let j = fz.rng.gen_range(0..i + 1);
        ways.swap(i, j);
    }
    let mut b = TraceBuilder::new("prime-probe-fz");
    for set in 0..PROBE_ENTRIES {
        let base = EVSET_PRIME_BASE + (EVSET_SET_OFFSET + set) as u64 * 64;
        b.load(x(10), x(28), base, 8);
        for &w in &ways {
            b.load(x(10), x(28), base + w * EVSET_SET_STRIDE, 8);
        }
    }
    let br = fz.window_prologue(&mut b, 0x2200_0000, 0x3300_0000);
    let target = EVSET_TARGET_BASE + (EVSET_SET_OFFSET + secret) as u64 * 64;
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2200_0000, 8));
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    wp.push(MicroOp::load(x(4), x(3), target, 8));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::eviction_set(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// An MSHR-contention variant: burst size 2–4 (all lines stay inside the
/// secret's page slot, so the decode is burst-size independent).
#[must_use]
pub fn mshr_contention_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0xA7);
    let secret = fz.secret();
    let burst = fz.rng.gen_range(2..5usize);
    let mut b = TraceBuilder::new("mshr-contention-fz");
    let br = fz.window_prologue(&mut b, 0x2400_0000, 0x3400_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2400_0000, 8));
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    for k in 0..burst {
        wp.push(MicroOp::load(
            x(4 + (k as u8 % 3)),
            x(3),
            CONT_BASE + secret as u64 * CONT_STRIDE + k as u64 * 64,
            8,
        ));
    }
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(8), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::contention_pages(),
        channel_kind: ChannelKind::MshrContention,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

/// An M-shadow variant. Variation is deliberately conservative — the
/// scenario's whole point is a timing corridor (transmit before the
/// window branch resolves, branch resolution long before the commit-wait
/// load retires), so only the secret, scratch fillers, and the
/// divide-chain length (1–2) vary.
#[must_use]
pub fn m_shadow_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0xD2);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("m-shadow-fz");
    const WAIT: u64 = 0x2600_0000;
    const SLOT: u64 = 0x2700_0000;
    b.load(x(20), x(28), WAIT, 8);
    b.store(x(28), x(27), SLOT, 8);
    b.load(x(1), x(26), SLOT, 8);
    b.alu(x(9), None, None);
    for _ in 0..fz.rng.gen_range(1..3usize) {
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
    }
    let br = b.branch(Some(x(9)), None, true, true);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    wp.push(MicroOp::load(
        x(4),
        x(3),
        PROBE_BASE + secret as u64 * PROBE_STRIDE,
        8,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Futuristic,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: None,
    }
}

impl Fz {
    /// The v2 window prologue: like [`Fz::window_prologue`] but the
    /// mispredicted branch carries a pc so the modelled predictor indexes
    /// it — parked at [`PHT_WINDOW_PC`], outside the judged channel.
    fn v2_window_prologue(&mut self, b: &mut TraceBuilder, warm: u64, cold: u64) -> usize {
        self.fill(b, 2);
        b.load(x(6), x(28), warm, 8);
        self.fill(b, 2);
        b.load(x(9), x(28), cold, 8);
        for _ in 0..self.rng.gen_range(1..4usize) {
            b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        }
        b.branch_at(Some(x(9)), None, true, true, PHT_WINDOW_PC, PHT_PC_BASE)
    }
}

/// A spectre-v2 PHT-poisoning variant: variable window length and fillers
/// around a fixed channel skeleton (the transient not-taken branch at the
/// secret-indexed pc is the channel; its shape cannot vary).
#[must_use]
pub fn spectre_v2_pht_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x2B);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("spectre-v2-pht-fz");
    let br = fz.v2_window_prologue(&mut b, 0x2000_0000, 0x3000_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::branch_at(
        Some(x(1)),
        None,
        false,
        false,
        PHT_PC_BASE + secret as u64,
        0,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 3);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::predictor_state(),
        channel_kind: ChannelKind::PredictorState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: Some(PredictorParams::v2_default()),
    }
}

/// A spectre-v2 BTB-injection variant: victim and attacker training
/// lengths vary (2–4 each; one aliasing branch already displaces the
/// direct-mapped entry), plus the usual window and filler knobs.
#[must_use]
pub fn spectre_v2_btb_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0x68);
    let secret = fz.secret();
    let mut b = TraceBuilder::new("spectre-v2-btb-fz");
    for _ in 0..fz.rng.gen_range(2..5usize) {
        b.branch_at(None, None, true, false, BTB_VICTIM_PC, 0x100);
    }
    fz.fill(&mut b, 2);
    for _ in 0..fz.rng.gen_range(2..5usize) {
        b.branch_at(None, None, true, false, BTB_ATTACKER_PC, 0x200);
    }
    fz.fill(&mut b, 2);
    b.load(x(6), x(28), 0x2000_0000, 8);
    b.load(x(9), x(28), 0x3000_0000, 8);
    for _ in 0..fz.rng.gen_range(1..4usize) {
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
    }
    let br = b.branch_at(Some(x(9)), None, true, true, BTB_VICTIM_PC, 0x100);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    wp.push(MicroOp::alu(x(3), Some(x(1)), None));
    wp.push(MicroOp::load(
        x(4),
        x(3),
        PROBE_BASE + secret as u64 * PROBE_STRIDE,
        8,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::page_stride(),
        channel_kind: ChannelKind::CacheState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: Some(PredictorParams::v2_default()),
    }
}

/// A spectre-v2 survives-squash variant: the transient branch is taken
/// (PHT *and* BTB footprint); the target and the window knobs vary.
#[must_use]
pub fn spectre_v2_squash_variant(seed: u64) -> AttackKernel {
    let mut fz = Fz::new(seed ^ 0xC4);
    let secret = fz.secret();
    let target = 0x300 + fz.rng.gen_range(0..4u64) * 0x40;
    let mut b = TraceBuilder::new("spectre-v2-squash-fz");
    let br = fz.v2_window_prologue(&mut b, 0x2000_0000, 0x3000_0000);
    let mut wp = Vec::new();
    fz.wp_fill(&mut wp, 2);
    wp.push(MicroOp::load(x(1), x(2), 0x2000_0000, 8));
    fz.wp_fill(&mut wp, 1);
    wp.push(MicroOp::branch_at(
        Some(x(1)),
        None,
        true,
        false,
        PHT_PC_BASE + secret as u64,
        target,
    ));
    b.wrong_path(br, wp);
    fz.fill(&mut b, 2);
    b.alu(x(5), None, None);
    AttackKernel {
        trace: b.build(),
        secret,
        channel: ProbeChannel::predictor_state(),
        channel_kind: ChannelKind::PredictorState,
        min_model: ThreatModel::Spectre,
        expected_slots: vec![secret],
        allowed_slots: vec![secret],
        predictor: Some(PredictorParams::v2_default()),
    }
}

/// One randomized variant of each scenario family, in battery order.
/// Distinct sub-seeds per family keep the knobs independent.
#[must_use]
pub fn fuzz_battery(seed: u64) -> Vec<AttackKernel> {
    vec![
        spectre_v1_variant(seed),
        spectre_v1_prefetch_variant(seed),
        ssb_variant(seed),
        store_forward_variant(seed),
        nested_speculation_variant(seed),
        prime_probe_variant(seed),
        mshr_contention_variant(seed),
        m_shadow_variant(seed),
        spectre_v2_pht_variant(seed),
        spectre_v2_btb_variant(seed),
        spectre_v2_squash_variant(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_battery_is_deterministic_in_the_seed() {
        let a = fuzz_battery(42);
        let b = fuzz_battery(42);
        let c = fuzz_battery(43);
        assert_eq!(a.len(), FAMILIES);
        for (ka, kb) in a.iter().zip(&b) {
            assert_eq!(ka.trace, kb.trace);
            assert_eq!(ka.secret, kb.secret);
        }
        // At least one family must differ structurally across seeds.
        assert!(
            a.iter().zip(&c).any(|(ka, kc)| ka.trace != kc.trace),
            "different seeds must produce different variants"
        );
    }

    #[test]
    fn variants_preserve_the_leak_contract_shape() {
        for seed in 0..32u64 {
            for k in fuzz_battery(seed) {
                assert!(k.expected_slots.contains(&k.secret), "{}", k.trace.name());
                assert!(
                    k.expected_slots.iter().all(|s| k.allowed_slots.contains(s)),
                    "{}",
                    k.trace.name()
                );
                assert!(
                    *k.allowed_slots.iter().max().unwrap() < k.channel.entries,
                    "{}: slots exceed the channel",
                    k.trace.name()
                );
            }
        }
    }

    #[test]
    fn fillers_stay_on_scratch_registers() {
        for seed in 0..16u64 {
            for k in fuzz_battery(seed) {
                for op in k.trace.iter() {
                    if let Some(d) = op.dest() {
                        // Filler destinations are x16..x19; every other
                        // destination belongs to a kernel's documented
                        // structure (x1..x10, x20).
                        let n = d.index();
                        assert!(
                            n <= 10 || (16..=19).contains(&n) || n == 20,
                            "{}: unexpected dest x{n}",
                            k.trace.name()
                        );
                    }
                }
            }
        }
    }
}
