//! Property tests for the trace codec and the persistent store (via the
//! offline proptest shim): any generated trace round-trips through
//! encode/decode bit-exactly, and any single-byte corruption of a cache
//! file is detected — the store falls back to regeneration instead of ever
//! handing a damaged trace to the simulator.

use proptest::prelude::*;
use sb_isa::{decode_trace, encode_trace};
use sb_workloads::{generate, spec2017_profiles, spectre_v1_kernel, ssb_kernel, TraceStore};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique per-case scratch directory (cases within one property run on one
/// thread, but properties run in parallel).
fn scratch_store(tag: &str) -> TraceStore {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sb-store-props-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    TraceStore::new(dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode ∘ decode is the identity on every generated trace.
    #[test]
    fn encode_decode_round_trips(
        profile_idx in 0usize..22,
        len in 16usize..600,
        seed in 0u64..1_000_000,
    ) {
        let profile = spec2017_profiles()[profile_idx];
        let trace = generate(&profile, len, seed);
        let bytes = encode_trace(&trace);
        let decoded = decode_trace(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(trace, decoded.unwrap());
    }

    /// Attack kernels (wrong-path blocks included) round-trip too.
    #[test]
    fn kernel_encode_decode_round_trips(secret in 0usize..16, spectre in any::<bool>()) {
        let kernel = if spectre { spectre_v1_kernel(secret) } else { ssb_kernel(secret) };
        let decoded = decode_trace(&encode_trace(&kernel.trace));
        prop_assert!(decoded.is_ok());
        prop_assert_eq!(kernel.trace, decoded.unwrap());
    }

    /// Flipping any single byte of an encoded trace makes decode fail —
    /// nothing slips past the magic/version/checksum validation.
    #[test]
    fn any_byte_flip_is_detected(
        profile_idx in 0usize..22,
        len in 16usize..200,
        seed in 0u64..1_000_000,
        pos_draw in 0usize..1_000_000,
        mask in 1u8..255,
    ) {
        let profile = spec2017_profiles()[profile_idx];
        let mut bytes = encode_trace(&generate(&profile, len, seed));
        let pos = pos_draw % bytes.len();
        bytes[pos] ^= mask;
        prop_assert!(
            decode_trace(&bytes).is_err(),
            "flip of byte {pos} with mask {mask:#x} went undetected"
        );
    }

    /// A corrupted cache file is a miss: the store regenerates the exact
    /// trace and heals the entry, so corruption can never change a run.
    #[test]
    fn corrupted_cache_file_falls_back_to_regeneration(
        profile_idx in 0usize..22,
        len in 16usize..200,
        seed in 0u64..1_000_000,
        pos_draw in 0usize..1_000_000,
        mask in 1u8..255,
    ) {
        let store = scratch_store("corrupt");
        let profile = spec2017_profiles()[profile_idx];
        let fresh = store.load_or_generate(&profile, len, seed);
        let path = store.path_for(profile.name, len, seed, profile.fingerprint());
        let mut bytes = std::fs::read(&path).expect("cache file written");
        let pos = pos_draw % bytes.len();
        bytes[pos] ^= mask;
        std::fs::write(&path, &bytes).expect("corrupt the entry");
        let after = store.load_or_generate(&profile, len, seed);
        prop_assert_eq!(&fresh, &after, "corruption changed the trace");
        // The store must have healed the entry with a valid copy.
        let healed = store.load(profile.name, len, seed, profile.fingerprint());
        prop_assert!(healed.is_some(), "entry not healed");
        prop_assert_eq!(fresh, healed.unwrap());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Truncating an encoded trace at any point fails decode.
    #[test]
    fn truncation_is_detected(
        len in 16usize..200,
        seed in 0u64..1_000_000,
        keep_draw in 0usize..1_000_000,
    ) {
        let profile = spec2017_profiles()[0];
        let bytes = encode_trace(&generate(&profile, len, seed));
        let keep = keep_draw % bytes.len(); // strictly shorter than full
        prop_assert!(decode_trace(&bytes[..keep]).is_err(), "kept {keep} bytes");
    }
}
