//! Golden differential suite for trace production: the batched generator
//! must emit *byte-identical* traces to the reference per-op RNG walk for
//! every profile, length and seed, and the serialization path (codec +
//! persistent store) must round-trip traces — including the attack kernels'
//! wrong-path blocks — without altering a single op. This is the same
//! oracle pattern that de-risked the event-wheel scheduler in PR 1: the
//! seed implementation stays alive as the reference, and equality is
//! asserted over the full structure, not summaries.

use sb_workloads::{
    generate, generate_with, spec2017_profiles, spectre_v1_kernel, ssb_kernel, GeneratorKind,
    TraceStore,
};

/// Batched == reference over the full SPEC2017 profile set, across several
/// lengths and seeds (including a length straddling the RNG block size and
/// the grid's default seed derivation range).
#[test]
fn batched_generator_matches_reference_across_suite() {
    let points: [(usize, u64); 3] = [(512, 1), (3_000, 0xC0FFEE), (9_001, 2025)];
    for profile in spec2017_profiles() {
        for (len, seed) in points {
            let batched = generate_with(GeneratorKind::Batched, &profile, len, seed);
            let reference = generate_with(GeneratorKind::Reference, &profile, len, seed);
            assert_eq!(
                batched, reference,
                "{} diverged at len={len} seed={seed}",
                profile.name
            );
        }
    }
}

/// The public `generate` entry point is the batched path and still matches
/// the reference oracle.
#[test]
fn default_entry_point_matches_reference() {
    for profile in spec2017_profiles().iter().take(4) {
        let default = generate(profile, 2_500, 7);
        let reference = generate_with(GeneratorKind::Reference, profile, 2_500, 7);
        assert_eq!(default, reference, "{}", profile.name);
    }
}

/// Every profile round-trips through the binary codec unchanged.
#[test]
fn generated_traces_round_trip_through_codec() {
    for profile in spec2017_profiles() {
        let t = generate(&profile, 1_500, 42);
        let decoded = sb_isa::decode_trace(&sb_isa::encode_trace(&t)).expect("decodes");
        assert_eq!(t, decoded, "{}", profile.name);
    }
}

/// The attack kernels carry wrong-path blocks (the transient micro-ops);
/// the codec and the store must preserve them exactly — a dropped or
/// reordered wrong-path op would silently defang the security experiments.
#[test]
fn attack_kernels_round_trip_with_wrong_paths() {
    let dir = std::env::temp_dir().join(format!("sb-golden-kernels-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::new(&dir);
    for secret in [0usize, 7, 15] {
        for kernel in [spectre_v1_kernel(secret), ssb_kernel(secret)] {
            let decoded =
                sb_isa::decode_trace(&sb_isa::encode_trace(&kernel.trace)).expect("decodes");
            assert_eq!(kernel.trace, decoded, "codec broke {}", kernel.trace.name());

            // Kernel content is fixed by the build, so the content
            // fingerprint slot is 0 by convention.
            let path = store.save(&kernel.trace, secret as u64, 0).expect("saves");
            assert!(path.exists());
            let loaded = store
                .load(kernel.trace.name(), kernel.trace.len(), secret as u64, 0)
                .expect("loads");
            assert_eq!(kernel.trace, loaded, "store broke {}", kernel.trace.name());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-loaded traces equal freshly generated ones for every profile —
/// the byte-identical-instruction-stream guarantee the paper's methodology
/// needs, across the serialize/deserialize boundary.
#[test]
fn store_round_trip_equals_fresh_generation_across_suite() {
    let dir = std::env::temp_dir().join(format!("sb-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::new(&dir);
    for profile in spec2017_profiles() {
        let fresh = generate(&profile, 800, 99);
        let cold = store.load_or_generate(&profile, 800, 99);
        let warm = store.load_or_generate(&profile, 800, 99);
        assert_eq!(fresh, cold, "{} cold", profile.name);
        assert_eq!(fresh, warm, "{} warm", profile.name);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
