//! The in-flight instruction record: one `Inst` per ROB entry, carrying
//! rename, scheduling, LSU and scheme state.

use sb_isa::{MicroOp, PhysReg, Seq};

/// Scheduling phase of an in-flight micro-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// In the issue queue, waiting for operands (and scheme gates).
    Waiting,
    /// Issued to a functional unit; completion scheduled.
    Executing,
    /// Result produced (broadcast may still be pending under NDA).
    Completed,
}

/// One in-flight micro-op with all per-stage state.
#[derive(Clone, Debug)]
pub struct Inst {
    /// Global sequence number (rename order).
    pub seq: Seq,
    /// Index into the trace, `None` for injected wrong-path ops.
    pub trace_idx: Option<usize>,
    /// The decoded micro-op.
    pub op: MicroOp,
    /// Whether this op was fetched down a mispredicted path.
    pub wrong_path: bool,
    /// Cycle the op entered the ROB (earliest issue is
    /// `dispatch_cycle + dispatch_latency`).
    pub dispatch_cycle: u64,

    // --- rename ---
    /// Renamed source physical registers.
    pub src_pregs: [Option<PhysReg>; 2],
    /// Destination physical register, if any.
    pub dst_preg: Option<PhysReg>,
    /// Previous mapping of the destination architectural register (freed at
    /// commit, restored on squash).
    pub prev_preg: Option<PhysReg>,
    /// STT-Rename: taint the destination architectural register held before
    /// this op (restored on squash walk-back).
    pub prev_taint: Option<Seq>,
    /// Branch tag consumed (branches only).
    pub br_tag: bool,

    // --- scheduling ---
    /// Current phase.
    pub phase: Phase,
    /// Cycle the result becomes available (set at issue).
    pub complete_at: Option<u64>,

    // --- stores (partial issue, §9.2) ---
    /// Store: address part selected for issue (in flight to the AGU).
    pub addr_launched: bool,
    /// Store: address part finished (address known in the SQ).
    pub addr_done: bool,
    /// Store: data part selected for issue.
    pub data_launched: bool,
    /// Store: data part finished (data present in the SQ).
    pub data_done: bool,

    // --- loads ---
    /// Load: issued past an older store with an unknown address.
    pub mem_speculated: bool,
    /// Load: forwarded from this store (else from the cache).
    pub fwd_src: Option<Seq>,
    /// Load: has performed its memory access.
    pub executed: bool,

    // --- branches ---
    /// Branch: C-shadow resolved.
    pub cshadow_resolved: bool,

    // --- scheme state ---
    /// Youngest root of taint gating this op (STT-Rename: from rename;
    /// STT-Issue: discovered at first issue attempt).
    pub yrot: Option<Seq>,
    /// Split-store taints (STT-Rename ablation, §9.2).
    pub addr_yrot: Option<Seq>,
    /// Split-store taints (STT-Rename ablation, §9.2).
    pub data_yrot: Option<Seq>,
    /// Masked out of selection until an untaint (STT) or data (NDA)
    /// broadcast unmasks it.
    pub taint_masked: bool,
    /// This load was speculative when it produced its value, so its
    /// destination is a taint root (STT) / its broadcast is delayed (NDA).
    pub spec_source: bool,
}

impl Inst {
    /// A freshly dispatched instruction in the waiting phase.
    #[must_use]
    pub fn new(seq: Seq, trace_idx: Option<usize>, op: MicroOp, wrong_path: bool) -> Self {
        Inst {
            seq,
            trace_idx,
            op,
            wrong_path,
            dispatch_cycle: 0,
            src_pregs: [None, None],
            dst_preg: None,
            prev_preg: None,
            prev_taint: None,
            br_tag: false,
            phase: Phase::Waiting,
            complete_at: None,
            addr_launched: false,
            addr_done: false,
            data_launched: false,
            data_done: false,
            mem_speculated: false,
            fwd_src: None,
            executed: false,
            cshadow_resolved: false,
            yrot: None,
            addr_yrot: None,
            data_yrot: None,
            taint_masked: false,
            spec_source: false,
        }
    }

    /// Whether this op has fully produced its result.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.phase == Phase::Completed
    }

    /// Whether this (store) op still has an un-issued part. Non-stores use
    /// `phase` alone.
    #[must_use]
    pub fn store_fully_issued(&self) -> bool {
        self.addr_done && self.data_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_isa::{ArchReg, MicroOp};

    #[test]
    fn new_inst_is_waiting_and_clean() {
        let i = Inst::new(
            Seq::new(1),
            Some(0),
            MicroOp::alu(ArchReg::int(1), None, None),
            false,
        );
        assert_eq!(i.phase, Phase::Waiting);
        assert!(!i.is_completed());
        assert!(i.yrot.is_none());
        assert!(!i.taint_masked);
        assert!(!i.store_fully_issued());
    }

    #[test]
    fn store_fully_issued_requires_both_parts() {
        let mut i = Inst::new(
            Seq::new(1),
            Some(0),
            MicroOp::store(ArchReg::int(1), ArchReg::int(2), 0x10, 8),
            false,
        );
        i.addr_done = true;
        assert!(!i.store_fully_issued());
        i.data_done = true;
        assert!(i.store_fully_issued());
    }
}
