//! The in-flight instruction record, split into a hot, cache-line-sized
//! scheduling record ([`HotInst`]) and a cold sidecar ([`ColdInst`]).
//!
//! The split exists for the simulator's own performance: wakeup/select,
//! the LSU searches and commit's head check together read ROB entries
//! millions of times per simulated second, but only ever touch a small
//! core of fields — sequence number, phase, renamed registers, the packed
//! status flags, the memory address and the gating taint root. Keeping
//! exactly that core in a ≤64-byte record (pinned by a compile-time
//! assertion and `hot_inst_fits_a_cache_line`) doubles the number of ROB
//! entries per cache line compared to the former single ~200-byte `Inst`
//! struct; everything the hot loops do not need — the decoded micro-op,
//! squash-walk rename state, wrong-path bookkeeping, diagnostics — lives
//! in the cold sidecar slab of the [`crate::rob::RobArena`], touched only
//! at dispatch, squash and rare slow paths.
//!
//! Packing conventions:
//! * physical registers are `u16` with [`NO_PREG`] meaning "none",
//! * taint roots and forwarding sources are raw sequence values with `0`
//!   meaning "none" (sequence numbers are assigned from 1, and [`Seq::ZERO`]
//!   is older than any renamed instruction, so 0 is never a live root),
//! * the eleven per-stage booleans are bits of one `u16` flags word.

use sb_isa::{MemAccess, MicroOp, OpClass, PhysReg, Seq};

/// Scheduling phase of an in-flight micro-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// In the issue queue, waiting for operands (and scheme gates).
    Waiting,
    /// Issued to a functional unit; completion scheduled.
    Executing,
    /// Result produced (broadcast may still be pending under NDA).
    Completed,
}

/// Sentinel for "no physical register" in the packed hot record.
const NO_PREG: u16 = u16::MAX;

/// Sentinel for "no sequence number" (no taint root / no forwarding
/// source) in the packed hot record. Valid sequence numbers start at 1.
const NO_SEQ: u64 = 0;

macro_rules! flag_accessors {
    ($($(#[$doc:meta])* $get:ident / $set:ident => $bit:ident;)*) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $get(&self) -> bool {
                self.flags & Self::$bit != 0
            }

            #[doc = concat!("Sets [`HotInst::", stringify!($get), "`].")]
            pub fn $set(&mut self, v: bool) {
                if v {
                    self.flags |= Self::$bit;
                } else {
                    self.flags &= !Self::$bit;
                }
            }
        )*
    };
}

/// The hot scheduling record: everything the per-cycle wakeup/select,
/// LSU-search and commit loops read, packed into at most 64 bytes.
///
/// One `HotInst` lives per ROB arena slot; the matching [`ColdInst`] shares
/// the slot index. Construction happens once at dispatch via
/// [`HotInst::new`]; afterwards the record is mutated in place — the arena
/// never moves it.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
pub struct HotInst {
    /// Global sequence number (rename order).
    pub seq: Seq,
    /// Cycle the op entered the ROB (earliest issue is
    /// `dispatch_cycle + dispatch_latency`).
    pub dispatch_cycle: u64,
    /// Youngest root of taint gating this op, packed (`NO_SEQ` = none).
    yrot: u64,
    /// Load: forwarding store sequence, packed (`NO_SEQ` = none).
    fwd_src: u64,
    /// Memory address (loads/stores; meaningful iff `HAS_MEM`).
    mem_addr: u64,
    /// Memory-queue mark, recorded at dispatch. For a load: the SQ tail
    /// position — stores at earlier positions are exactly the stores older
    /// than this load. For a store: the LQ tail position — loads at this
    /// position onward are exactly the loads younger than this store. The
    /// LSU search and the forwarding-error check slice the queue rings
    /// directly from this mark instead of binary-searching.
    pub queue_mark: u64,
    /// Renamed source physical registers (`NO_PREG` = none).
    src_pregs: [u16; 2],
    /// Destination physical register (`NO_PREG` = none).
    dst_preg: u16,
    /// Packed per-stage status bits (see the `flag_accessors!` block).
    flags: u16,
    /// Functional class (copied out of the micro-op).
    pub class: OpClass,
    /// Current phase.
    pub phase: Phase,
    /// Memory access size in bytes (meaningful iff `HAS_MEM`).
    mem_bytes: u8,
}

/// The hot record must fit one cache line: the wakeup/select loops depend
/// on it (see the module docs). `arena_props.rs` pins this again as a
/// runtime test with a friendlier failure message.
const _: () = assert!(std::mem::size_of::<HotInst>() <= 64);

impl HotInst {
    const WRONG_PATH: u16 = 1 << 0;
    const BR_TAG: u16 = 1 << 1;
    const ADDR_LAUNCHED: u16 = 1 << 2;
    const ADDR_DONE: u16 = 1 << 3;
    const DATA_LAUNCHED: u16 = 1 << 4;
    const DATA_DONE: u16 = 1 << 5;
    const MEM_SPECULATED: u16 = 1 << 6;
    const EXECUTED: u16 = 1 << 7;
    const CSHADOW_RESOLVED: u16 = 1 << 8;
    const TAINT_MASKED: u16 = 1 << 9;
    const SPEC_SOURCE: u16 = 1 << 10;
    const HAS_MEM: u16 = 1 << 11;
    const MISPREDICTED: u16 = 1 << 12;

    /// A freshly dispatched instruction in the waiting phase. Renamed
    /// registers are filled in by the dispatch stage afterwards.
    #[must_use]
    pub fn new(seq: Seq, op: MicroOp, wrong_path: bool) -> Self {
        let mut flags = 0u16;
        if wrong_path {
            flags |= Self::WRONG_PATH;
        }
        if op.is_mispredicted() {
            flags |= Self::MISPREDICTED;
        }
        let (mem_addr, mem_bytes) = match op.mem {
            Some(m) => {
                flags |= Self::HAS_MEM;
                (m.addr, m.bytes)
            }
            None => (0, 0),
        };
        HotInst {
            seq,
            dispatch_cycle: 0,
            yrot: NO_SEQ,
            fwd_src: NO_SEQ,
            mem_addr,
            queue_mark: 0,
            src_pregs: [NO_PREG; 2],
            dst_preg: NO_PREG,
            flags,
            class: op.class,
            phase: Phase::Waiting,
            mem_bytes,
        }
    }

    // --- rename ---

    /// Renamed source physical register `i`, if any.
    #[must_use]
    pub fn src_preg(&self, i: usize) -> Option<PhysReg> {
        (self.src_pregs[i] != NO_PREG).then(|| PhysReg::new(self.src_pregs[i]))
    }

    /// Both renamed source physical registers.
    #[must_use]
    pub fn src_pregs(&self) -> [Option<PhysReg>; 2] {
        [self.src_preg(0), self.src_preg(1)]
    }

    /// Records the renamed source register `i`.
    pub fn set_src_preg(&mut self, i: usize, p: PhysReg) {
        debug_assert!(p.index() < NO_PREG as usize);
        self.src_pregs[i] = p.index() as u16;
    }

    /// Destination physical register, if any.
    #[must_use]
    pub fn dst_preg(&self) -> Option<PhysReg> {
        (self.dst_preg != NO_PREG).then(|| PhysReg::new(self.dst_preg))
    }

    /// Records the renamed destination register.
    pub fn set_dst_preg(&mut self, p: PhysReg) {
        debug_assert!(p.index() < NO_PREG as usize);
        self.dst_preg = p.index() as u16;
    }

    // --- scheme state ---

    /// Youngest root of taint gating this op (STT-Rename: from rename;
    /// STT-Issue: discovered at first issue attempt).
    #[must_use]
    pub fn yrot(&self) -> Option<Seq> {
        (self.yrot != NO_SEQ).then(|| Seq::new(self.yrot))
    }

    /// Records the gating taint root.
    pub fn set_yrot(&mut self, root: Seq) {
        debug_assert!(root.value() != NO_SEQ, "Seq 0 is the packed None");
        self.yrot = root.value();
    }

    // --- loads ---

    /// Load: the store this load forwarded from (else it read the cache).
    #[must_use]
    pub fn fwd_src(&self) -> Option<Seq> {
        (self.fwd_src != NO_SEQ).then(|| Seq::new(self.fwd_src))
    }

    /// Records the forwarding store.
    pub fn set_fwd_src(&mut self, store: Seq) {
        debug_assert!(store.value() != NO_SEQ, "Seq 0 is the packed None");
        self.fwd_src = store.value();
    }

    // --- memory ---

    /// The memory access carried by a load or store, if any.
    #[must_use]
    pub fn mem(&self) -> Option<MemAccess> {
        (self.flags & Self::HAS_MEM != 0).then_some(MemAccess {
            addr: self.mem_addr,
            bytes: self.mem_bytes,
        })
    }

    // --- class / phase shorthands ---

    /// Whether this op is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// Whether this op is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// Whether this op is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// Whether this op has fully produced its result.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.phase == Phase::Completed
    }

    /// Whether this (store) op has finished both parts. Non-stores use
    /// `phase` alone.
    #[must_use]
    pub fn store_fully_issued(&self) -> bool {
        let both = Self::ADDR_DONE | Self::DATA_DONE;
        self.flags & both == both
    }

    flag_accessors! {
        /// Whether this op was fetched down a mispredicted path.
        wrong_path / set_wrong_path => WRONG_PATH;
        /// Branch tag consumed (branches only).
        br_tag / set_br_tag => BR_TAG;
        /// Store: address part selected for issue (in flight to the AGU).
        addr_launched / set_addr_launched => ADDR_LAUNCHED;
        /// Store: address part finished (address known in the SQ).
        addr_done / set_addr_done => ADDR_DONE;
        /// Store: data part selected for issue.
        data_launched / set_data_launched => DATA_LAUNCHED;
        /// Store: data part finished (data present in the SQ).
        data_done / set_data_done => DATA_DONE;
        /// Load: issued past an older store with an unknown address.
        mem_speculated / set_mem_speculated => MEM_SPECULATED;
        /// Load: has performed its memory access.
        executed / set_executed => EXECUTED;
        /// Branch: C-shadow resolved.
        cshadow_resolved / set_cshadow_resolved => CSHADOW_RESOLVED;
        /// Masked out of selection until an untaint (STT) or data (NDA)
        /// broadcast unmasks it.
        taint_masked / set_taint_masked => TAINT_MASKED;
        /// This load was speculative when it produced its value, so its
        /// destination is a taint root (STT) / its broadcast is delayed
        /// (NDA).
        spec_source / set_spec_source => SPEC_SOURCE;
        /// Branch: the front end predicted this branch incorrectly
        /// (copied from the micro-op's pre-resolved outcome).
        is_mispredicted / set_mispredicted => MISPREDICTED;
    }
}

/// Sentinel for "no trace index" / "no shadow token" in the cold sidecar.
const NO_U64: u64 = u64::MAX;

/// The cold sidecar: per-instruction state the per-cycle hot loops never
/// read. Stored slot-parallel to [`HotInst`] in the ROB arena; touched at
/// dispatch (construction, STT-Rename group taint), commit and squash
/// (rename walk-back), the memory-dependence predictor lookup, and
/// diagnostics. Packed with the same sentinel conventions as the hot
/// record — dispatch writes (and squash copies) one of these per op, so
/// its size is paid on the pipeline's widest path.
#[derive(Clone, Copy, Debug)]
pub struct ColdInst {
    /// The decoded micro-op.
    pub op: MicroOp,
    /// Trace index (`NO_U64` = injected wrong-path op).
    trace_idx: u64,
    /// STT-Rename: previous taint of the destination architectural
    /// register, packed (`NO_SEQ` = none).
    prev_taint: u64,
    /// Split-store address taint, packed (STT-Rename ablation, §9.2).
    addr_yrot: u64,
    /// Split-store data taint, packed (STT-Rename ablation, §9.2).
    data_yrot: u64,
    /// Cast token of the speculation shadow this op casts, `NO_U64` = none.
    shadow_token: u64,
    /// Previous mapping of the destination architectural register
    /// (`NO_PREG` = none).
    prev_preg: u16,
    /// Modelled predictor: the fetch-time gshare PHT index of this branch
    /// (`u32::MAX` = none / predictor off). Stashed at dispatch so
    /// training at resolution uses the fetch-time history even after
    /// younger branches shifted the GHR.
    pht_index: u32,
}

impl ColdInst {
    /// Sidecar state for a freshly dispatched instruction.
    #[must_use]
    pub fn new(op: MicroOp, trace_idx: Option<usize>) -> Self {
        ColdInst {
            op,
            trace_idx: trace_idx.map_or(NO_U64, |t| t as u64),
            prev_taint: NO_SEQ,
            addr_yrot: NO_SEQ,
            data_yrot: NO_SEQ,
            shadow_token: NO_U64,
            prev_preg: NO_PREG,
            pht_index: u32::MAX,
        }
    }

    /// The stashed fetch-time PHT index, if the modelled predictor
    /// indexed this branch at dispatch.
    #[must_use]
    pub fn pht_index(&self) -> Option<u32> {
        (self.pht_index != u32::MAX).then_some(self.pht_index)
    }

    /// Stashes the fetch-time PHT index.
    pub fn set_pht_index(&mut self, idx: u32) {
        debug_assert!(idx != u32::MAX);
        self.pht_index = idx;
    }

    /// Index into the trace, `None` for injected wrong-path ops.
    #[must_use]
    pub fn trace_idx(&self) -> Option<usize> {
        (self.trace_idx != NO_U64).then_some(self.trace_idx as usize)
    }

    /// Previous mapping of the destination architectural register (freed
    /// at commit, restored on squash).
    #[must_use]
    pub fn prev_preg(&self) -> Option<PhysReg> {
        (self.prev_preg != NO_PREG).then(|| PhysReg::new(self.prev_preg))
    }

    /// Records the previous destination mapping.
    pub fn set_prev_preg(&mut self, p: PhysReg) {
        debug_assert!(p.index() < NO_PREG as usize);
        self.prev_preg = p.index() as u16;
    }

    /// STT-Rename: taint the destination architectural register held
    /// before this op (restored on squash walk-back).
    #[must_use]
    pub fn prev_taint(&self) -> Option<Seq> {
        (self.prev_taint != NO_SEQ).then(|| Seq::new(self.prev_taint))
    }

    /// Records the previous destination taint.
    pub fn set_prev_taint(&mut self, t: Option<Seq>) {
        self.prev_taint = t.map_or(NO_SEQ, |s| {
            debug_assert!(s.value() != NO_SEQ, "Seq 0 is the packed None");
            s.value()
        });
    }

    /// Split-store address taint (STT-Rename ablation, §9.2).
    #[must_use]
    pub fn addr_yrot(&self) -> Option<Seq> {
        (self.addr_yrot != NO_SEQ).then(|| Seq::new(self.addr_yrot))
    }

    /// Split-store data taint (STT-Rename ablation, §9.2).
    #[must_use]
    pub fn data_yrot(&self) -> Option<Seq> {
        (self.data_yrot != NO_SEQ).then(|| Seq::new(self.data_yrot))
    }

    /// Records the split-store taints.
    pub fn set_split_yrots(&mut self, addr: Option<Seq>, data: Option<Seq>) {
        self.addr_yrot = addr.map_or(NO_SEQ, Seq::value);
        self.data_yrot = data.map_or(NO_SEQ, Seq::value);
    }

    /// Cast token of the speculation shadow this op casts (branches,
    /// stores, and loads under the Futuristic threat model): resolves the
    /// shadow in O(1) instead of by sequence-number search.
    #[must_use]
    pub fn shadow_token(&self) -> Option<u64> {
        (self.shadow_token != NO_U64).then_some(self.shadow_token)
    }

    /// Records the shadow cast token.
    pub fn set_shadow_token(&mut self, token: u64) {
        debug_assert!(token != NO_U64);
        self.shadow_token = token;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_isa::{ArchReg, MicroOp};

    #[test]
    fn new_inst_is_waiting_and_clean() {
        let op = MicroOp::alu(ArchReg::int(1), None, None);
        let h = HotInst::new(Seq::new(1), op, false);
        let c = ColdInst::new(op, Some(0));
        assert_eq!(h.phase, Phase::Waiting);
        assert!(!h.is_completed());
        assert!(h.yrot().is_none());
        assert!(!h.taint_masked());
        assert!(!h.store_fully_issued());
        assert!(h.mem().is_none());
        assert_eq!(h.src_pregs(), [None, None]);
        assert!(h.dst_preg().is_none());
        assert_eq!(c.trace_idx(), Some(0));
        assert!(c.prev_preg().is_none());
    }

    #[test]
    fn store_fully_issued_requires_both_parts() {
        let op = MicroOp::store(ArchReg::int(1), ArchReg::int(2), 0x10, 8);
        let mut h = HotInst::new(Seq::new(1), op, false);
        h.set_addr_done(true);
        assert!(!h.store_fully_issued());
        h.set_data_done(true);
        assert!(h.store_fully_issued());
    }

    #[test]
    fn mem_access_round_trips_through_the_packed_fields() {
        let op = MicroOp::load(ArchReg::int(1), ArchReg::int(2), 0xdead_beef, 4);
        let h = HotInst::new(Seq::new(3), op, false);
        assert_eq!(h.mem(), op.mem);
    }

    #[test]
    fn register_and_root_packing_round_trips() {
        let op = MicroOp::alu(ArchReg::int(1), Some(ArchReg::int(2)), None);
        let mut h = HotInst::new(Seq::new(9), op, false);
        h.set_src_preg(0, PhysReg::new(77));
        h.set_dst_preg(PhysReg::new(123));
        h.set_yrot(Seq::new(41));
        h.set_fwd_src(Seq::new(40));
        assert_eq!(h.src_pregs(), [Some(PhysReg::new(77)), None]);
        assert_eq!(h.dst_preg(), Some(PhysReg::new(123)));
        assert_eq!(h.yrot(), Some(Seq::new(41)));
        assert_eq!(h.fwd_src(), Some(Seq::new(40)));
    }

    #[test]
    fn mispredict_flag_copies_the_ctrl_outcome() {
        let br = MicroOp::branch(Some(ArchReg::int(1)), None, true, true);
        assert!(HotInst::new(Seq::new(1), br, false).is_mispredicted());
        let ok = MicroOp::branch(Some(ArchReg::int(1)), None, false, false);
        assert!(!HotInst::new(Seq::new(2), ok, false).is_mispredicted());
    }

    #[test]
    fn flags_are_independent() {
        let op = MicroOp::store(ArchReg::int(1), ArchReg::int(2), 0x10, 8);
        let mut h = HotInst::new(Seq::new(1), op, true);
        h.set_addr_launched(true);
        h.set_taint_masked(true);
        assert!(h.wrong_path() && h.addr_launched() && h.taint_masked());
        assert!(!h.data_launched() && !h.executed());
        h.set_taint_masked(false);
        assert!(!h.taint_masked());
        assert!(h.wrong_path() && h.addr_launched());
    }

    #[test]
    fn hot_record_stays_within_a_cache_line() {
        assert!(
            std::mem::size_of::<HotInst>() <= 64,
            "HotInst is {} bytes; the hot loops budget one cache line",
            std::mem::size_of::<HotInst>()
        );
    }
}
