//! Modelled frontend branch predictor: a gshare direction predictor plus a
//! direct-mapped, tagged branch target buffer (BTB), with a global history
//! register (GHR).
//!
//! When enabled (see [`PredictorConfig`](crate::PredictorConfig)), the core
//! *produces* the mispredict decision at fetch time from this state instead
//! of reading the pre-resolved bit from the trace — the trace's static
//! outcome becomes the ground truth the predictor is trained against. This
//! is what lets predictor-state channels (Spectre v2 / BTB injection, PHT
//! poisoning, predictor state surviving squashes) be expressed at all: the
//! prediction tables are microarchitectural state that training updates and
//! squashes do *not* roll back, exactly like cache fills.
//!
//! Every state change ([`Predictor::train`], [`Predictor::shift_ghr`])
//! reports itself as `(CacheChangeKind, table index)` pairs that the core
//! forwards to the leakage observer via
//! `MemoryHierarchy::note_predictor_update`, attributed and squash-resolved
//! exactly like cache state.

use sb_mem::CacheChangeKind;

/// What the predictor said about one fetched branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (PHT counter ≥ 2).
    pub taken: bool,
    /// Predicted target, if the BTB holds an entry whose tag matches the
    /// branch pc. `None` on a BTB miss — a taken branch with no target
    /// prediction is necessarily a mispredict (the frontend cannot have
    /// followed it).
    pub target: Option<u64>,
}

/// Fixed-capacity buffer of predictor-state change events produced by one
/// training step — returned by value so the core can hold `&mut self.mem`
/// while draining it.
#[derive(Clone, Copy, Debug)]
pub struct PredEvents {
    buf: [(CacheChangeKind, u64); 4],
    len: usize,
}

impl Default for PredEvents {
    fn default() -> Self {
        PredEvents {
            // Placeholder kind; `len` guards what `iter` exposes.
            buf: [(CacheChangeKind::PhtTrain, 0); 4],
            len: 0,
        }
    }
}

impl PredEvents {
    fn push(&mut self, kind: CacheChangeKind, addr: u64) {
        self.buf[self.len] = (kind, addr);
        self.len += 1;
    }

    /// The recorded `(kind, table index)` events, in occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = (CacheChangeKind, u64)> + '_ {
        self.buf[..self.len].iter().copied()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the training step changed no observable state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The gshare + BTB + GHR machine. Constructed by the core from
/// [`PredictorConfig`](crate::PredictorConfig) when the predictor is
/// enabled; all tables start cold (PHT weakly not-taken, BTB empty, GHR
/// zero) so runs are deterministic.
#[derive(Clone, Debug)]
pub struct Predictor {
    /// 2-bit saturating counters, initialized weakly not-taken (1).
    pht: Vec<u8>,
    /// Direct-mapped tagged entries: `(full branch pc, target)`.
    btb: Vec<Option<(u64, u64)>>,
    /// Global history register: youngest outcome in bit 0.
    ghr: u64,
    ghr_bits: u32,
}

impl Predictor {
    /// Builds cold tables. Both entry counts must be powers of two (the
    /// index is a mask) — enforced by `CoreConfig::validate`, asserted here.
    #[must_use]
    pub fn new(pht_entries: usize, btb_entries: usize, ghr_bits: u32) -> Self {
        assert!(
            pht_entries.is_power_of_two() && btb_entries.is_power_of_two(),
            "predictor table sizes must be powers of two"
        );
        assert!(ghr_bits <= 32, "GHR wider than 32 bits is unsupported");
        Predictor {
            pht: vec![1; pht_entries],
            btb: vec![None; btb_entries],
            ghr: 0,
            ghr_bits,
        }
    }

    /// The gshare PHT index for a branch at `pc` under the *current* GHR.
    /// The core computes this at dispatch (fetch time in this model) and
    /// stashes it, so training at resolution uses the fetch-time history
    /// even after younger branches shifted the GHR.
    #[must_use]
    pub fn pht_index(&self, pc: u64) -> u32 {
        let hist = if self.ghr_bits == 0 {
            0
        } else {
            self.ghr & ((1u64 << self.ghr_bits) - 1)
        };
        ((pc ^ hist) & (self.pht.len() as u64 - 1)) as u32
    }

    /// The direct-mapped BTB index for a branch at `pc`.
    #[must_use]
    pub fn btb_index(&self, pc: u64) -> u32 {
        (pc & (self.btb.len() as u64 - 1)) as u32
    }

    /// Predicts direction and target for a branch at `pc` without changing
    /// any state.
    #[must_use]
    pub fn predict(&self, pc: u64) -> Prediction {
        let taken = self.pht[self.pht_index(pc) as usize] >= 2;
        let target = match self.btb[self.btb_index(pc) as usize] {
            Some((tag, tgt)) if tag == pc => Some(tgt),
            _ => None,
        };
        Prediction { taken, target }
    }

    /// Whether the prediction at `pc` mispredicts a branch whose actual
    /// outcome is `(taken, target)`: wrong direction, or taken with a BTB
    /// miss or stale/aliased target.
    #[must_use]
    pub fn mispredicts(&self, pc: u64, taken: bool, target: u64) -> bool {
        let p = self.predict(pc);
        p.taken != taken || (taken && p.target != Some(target))
    }

    /// Shifts the actual outcome of a fetched correct-path branch into the
    /// GHR; returns the event to attribute (the address is the pre-shift
    /// history value — *which* history was displaced is the observable).
    pub fn shift_ghr(&mut self, taken: bool) -> Option<(CacheChangeKind, u64)> {
        if self.ghr_bits == 0 {
            return None;
        }
        let prev = self.ghr & ((1u64 << self.ghr_bits) - 1);
        self.ghr = ((self.ghr << 1) | u64::from(taken)) & ((1u64 << self.ghr_bits) - 1);
        Some((CacheChangeKind::GhrShift, prev))
    }

    /// Trains the PHT counter at `pht_index` (the stashed fetch-time index)
    /// and, for taken branches, installs `(pc, target)` in the BTB.
    /// Returns the observable state changes: a `PhtTrain` only when the
    /// counter actually moved (a saturated counter is silent, mirroring
    /// how cache hits record nothing), a `BtbEvict` + `BtbFill` when a
    /// live entry with a different tag is displaced, a bare `BtbFill` when
    /// an empty or same-tag entry is (re)written, and nothing when the
    /// entry already matches exactly.
    pub fn train(&mut self, pht_index: u32, pc: u64, taken: bool, target: u64) -> PredEvents {
        let mut ev = PredEvents::default();
        let ctr = &mut self.pht[pht_index as usize];
        let next = if taken {
            (*ctr + 1).min(3)
        } else {
            ctr.saturating_sub(1)
        };
        if next != *ctr {
            *ctr = next;
            ev.push(CacheChangeKind::PhtTrain, u64::from(pht_index));
        }
        if taken {
            let idx = self.btb_index(pc);
            let slot = &mut self.btb[idx as usize];
            match *slot {
                Some((tag, tgt)) if tag == pc && tgt == target => {}
                Some((tag, _)) => {
                    if tag != pc {
                        ev.push(CacheChangeKind::BtbEvict, u64::from(idx));
                    }
                    *slot = Some((pc, target));
                    ev.push(CacheChangeKind::BtbFill, u64::from(idx));
                }
                None => {
                    *slot = Some((pc, target));
                    ev.push(CacheChangeKind::BtbFill, u64::from(idx));
                }
            }
        }
        ev
    }

    /// The current PHT counter value at `idx` (tests / analysis).
    #[must_use]
    pub fn pht_counter(&self, idx: u32) -> u8 {
        self.pht[idx as usize]
    }

    /// The BTB entry at `idx` as `(tag pc, target)`, if live (tests /
    /// analysis).
    #[must_use]
    pub fn btb_entry(&self, idx: u32) -> Option<(u64, u64)> {
        self.btb[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_says_not_taken_no_target() {
        let p = Predictor::new(16, 8, 0);
        let pred = p.predict(0x40);
        assert!(!pred.taken);
        assert_eq!(pred.target, None);
        // Not-taken with no target matches a not-taken branch.
        assert!(!p.mispredicts(0x40, false, 0));
        // ...but mispredicts a taken one.
        assert!(p.mispredicts(0x40, true, 0x80));
    }

    #[test]
    fn counters_saturate_and_cross_the_taken_threshold() {
        let mut p = Predictor::new(16, 8, 0);
        let idx = p.pht_index(0x40);
        assert_eq!(p.pht_counter(idx), 1);
        let ev = p.train(idx, 0x40, true, 0x80);
        assert_eq!(p.pht_counter(idx), 2);
        assert!(p.predict(0x40).taken);
        // counter moved + BTB filled
        let kinds: Vec<_> = ev.iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![CacheChangeKind::PhtTrain, CacheChangeKind::BtbFill]
        );
        p.train(idx, 0x40, true, 0x80);
        assert_eq!(p.pht_counter(idx), 3);
        // Saturated + identical BTB entry: training is silent.
        let ev = p.train(idx, 0x40, true, 0x80);
        assert!(ev.is_empty());
        assert_eq!(p.pht_counter(idx), 3);
    }

    #[test]
    fn not_taken_training_decays_to_zero_and_saturates() {
        let mut p = Predictor::new(16, 8, 0);
        let idx = p.pht_index(0x40);
        let ev = p.train(idx, 0x40, false, 0);
        assert_eq!(
            ev.iter().next(),
            Some((CacheChangeKind::PhtTrain, u64::from(idx)))
        );
        assert_eq!(p.pht_counter(idx), 0);
        let ev = p.train(idx, 0x40, false, 0);
        assert!(ev.is_empty());
    }

    #[test]
    fn btb_aliasing_evicts_then_fills() {
        let mut p = Predictor::new(16, 8, 0);
        let v = 0x40u64;
        let a = v + 8; // same BTB index (8 entries), different tag
        assert_eq!(p.btb_index(v), p.btb_index(a));
        p.train(p.pht_index(v), v, true, 0x100);
        assert_eq!(p.btb_entry(p.btb_index(v)), Some((v, 0x100)));
        let ev = p.train(p.pht_index(a), a, true, 0x200);
        let kinds: Vec<_> = ev.iter().map(|(k, _)| k).collect();
        assert!(kinds.contains(&CacheChangeKind::BtbEvict));
        assert!(kinds.contains(&CacheChangeKind::BtbFill));
        assert_eq!(p.btb_entry(p.btb_index(v)), Some((a, 0x200)));
        // The victim's prediction now tag-misses: taken direction with no
        // target is a mispredict — the v2 injection primitive.
        assert!(p.mispredicts(v, true, 0x100));
    }

    #[test]
    fn retargeting_same_tag_fills_without_evicting() {
        let mut p = Predictor::new(16, 8, 0);
        p.train(p.pht_index(0x40), 0x40, true, 0x100);
        let ev = p.train(p.pht_index(0x40), 0x40, true, 0x180);
        let kinds: Vec<_> = ev.iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == CacheChangeKind::BtbEvict)
                .count(),
            0
        );
        assert!(kinds.contains(&CacheChangeKind::BtbFill));
        assert_eq!(p.btb_entry(p.btb_index(0x40)), Some((0x40, 0x180)));
    }

    #[test]
    fn ghr_folds_into_the_pht_index() {
        let mut p = Predictor::new(16, 8, 4);
        let i0 = p.pht_index(0x43);
        let ev = p.shift_ghr(true);
        assert_eq!(ev, Some((CacheChangeKind::GhrShift, 0)));
        let i1 = p.pht_index(0x43);
        assert_ne!(i0, i1, "history must perturb the gshare index");
        // With ghr_bits=0 the shift is a no-op and reports nothing.
        let mut q = Predictor::new(16, 8, 0);
        let j0 = q.pht_index(0x43);
        assert_eq!(q.shift_ghr(true), None);
        assert_eq!(q.pht_index(0x43), j0);
    }

    #[test]
    fn ghr_shift_reports_preshift_history() {
        let mut p = Predictor::new(16, 8, 4);
        p.shift_ghr(true);
        p.shift_ghr(false);
        let ev = p.shift_ghr(true).unwrap();
        assert_eq!(ev, (CacheChangeKind::GhrShift, 0b10));
    }

    #[test]
    fn correct_prediction_after_training_is_not_a_mispredict() {
        let mut p = Predictor::new(64, 16, 0);
        for _ in 0..2 {
            let i = p.pht_index(0x40);
            p.train(i, 0x40, true, 0x80);
        }
        assert!(!p.mispredicts(0x40, true, 0x80));
        // Wrong target with the right direction still mispredicts.
        assert!(p.mispredicts(0x40, true, 0xC0));
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_tables_rejected() {
        let _ = Predictor::new(12, 8, 0);
    }
}
