//! The trace-driven front end.
//!
//! Correct-path micro-ops stream from the trace cursor. A mispredicted
//! branch either injects its wrong-path block (attack kernels, modelling
//! transient execution explicitly) or stalls fetch until the branch
//! resolves; either way the core pays the redirect penalty after
//! resolution. Store-to-load forwarding errors rewind the cursor to the
//! offending load and replay the stream — which is why traces are fully
//! materialized and indexable.

use sb_isa::{MicroOp, Trace};

/// What the front end delivers for one dispatch slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fetched {
    /// A correct-path op at this trace index.
    Correct(usize),
    /// A wrong-path op (index into the active wrong-path block).
    WrongPath(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// Streaming correct-path ops.
    Normal,
    /// Delivering the wrong-path block attached to the branch at
    /// `branch_idx`; `next` indexes into the block.
    WrongPath { branch_idx: usize, next: usize },
    /// Fetch stopped until the in-flight mispredicted branch resolves.
    Stalled,
    /// Redirect in progress; fetch resumes at `cycle`.
    RedirectUntil(u64),
}

/// Trace-driven fetch with misprediction stall, wrong-path injection, and
/// flush/rewind support.
#[derive(Clone, Debug)]
pub struct Frontend {
    trace: Trace,
    cursor: usize,
    mode: Mode,
    redirect_penalty: u32,
}

impl Frontend {
    /// A front end positioned at the start of `trace`.
    #[must_use]
    pub fn new(trace: Trace, redirect_penalty: u32) -> Self {
        Frontend {
            trace,
            cursor: 0,
            mode: Mode::Normal,
            redirect_penalty,
        }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether every correct-path op has been delivered and fetch is not
    /// rewound or replaying.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.trace.len() && matches!(self.mode, Mode::Normal)
    }

    /// Looks at the next op fetch would deliver at `cycle` without consuming
    /// it, so dispatch can check resource availability first. Expired
    /// redirects are retired as a side effect (idempotent).
    pub fn peek(&mut self, cycle: u64) -> Option<(Fetched, MicroOp)> {
        match &self.mode {
            Mode::Stalled => None,
            Mode::RedirectUntil(at) => {
                if cycle < *at {
                    None
                } else {
                    self.mode = Mode::Normal;
                    self.peek(cycle)
                }
            }
            Mode::WrongPath { branch_idx, next } => {
                let block = self
                    .trace
                    .wrong_path(*branch_idx)
                    .expect("wrong-path mode requires a block");
                block
                    .ops
                    .get(*next)
                    .map(|&op| (Fetched::WrongPath(*next), op))
            }
            Mode::Normal => self
                .trace
                .get(self.cursor)
                .map(|&op| (Fetched::Correct(self.cursor), op)),
        }
    }

    /// Consumes the op last returned by [`Frontend::peek`]. Entering a
    /// mispredicted branch switches fetch into wrong-path or stalled mode.
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to consume in the current mode.
    pub fn consume(&mut self) {
        self.consume_with(None);
    }

    /// [`Frontend::consume`] with an optional mispredict override for the
    /// op being consumed: `Some(m)` replaces the trace's static bit with
    /// the modelled predictor's fetch-time decision `m`, `None` keeps the
    /// static bit (the predictor-off path — bit-identical to the
    /// pre-predictor frontend).
    ///
    /// A dynamically mispredicted branch still injects the trace's
    /// wrong-path block if one is attached; when the predictor mispredicts
    /// a branch that carries no block (the static bit said
    /// well-predicted), fetch stalls — the trace has no transient ops to
    /// offer, so only the timing cost is modelled.
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to consume in the current mode.
    pub fn consume_with(&mut self, mispredict_override: Option<bool>) {
        match &mut self.mode {
            Mode::WrongPath { next, .. } => {
                *next += 1;
            }
            Mode::Normal => {
                let idx = self.cursor;
                let static_bit = self
                    .trace
                    .get(idx)
                    .expect("consume past end of trace")
                    .is_mispredicted();
                let mispredicted = mispredict_override.unwrap_or(static_bit);
                self.cursor += 1;
                if mispredicted {
                    self.mode = if self.trace.wrong_path(idx).is_some() {
                        Mode::WrongPath {
                            branch_idx: idx,
                            next: 0,
                        }
                    } else {
                        Mode::Stalled
                    };
                }
            }
            _ => panic!("consume while fetch cannot deliver"),
        }
    }

    /// Delivers and consumes the next op for dispatch at `cycle`, if fetch
    /// can supply one.
    pub fn next_op(&mut self, cycle: u64) -> Option<(Fetched, MicroOp)> {
        let out = self.peek(cycle)?;
        self.consume();
        Some(out)
    }

    /// Called when the in-flight mispredicted branch resolves at `cycle`:
    /// ends the stall / wrong-path mode and starts the redirect. The cursor
    /// already points at the first post-branch correct-path op.
    ///
    /// # Panics
    ///
    /// Panics if fetch is not stalled on (or injecting the wrong path of)
    /// a pending mispredict. This is a hard invariant, not a debug assert:
    /// a spurious resolution in release would silently start a redirect
    /// and skew timing without any test noticing.
    pub fn branch_resolved(&mut self, cycle: u64) {
        assert!(
            matches!(self.mode, Mode::Stalled | Mode::WrongPath { .. }),
            "resolution without a pending mispredict"
        );
        self.mode = Mode::RedirectUntil(cycle + u64::from(self.redirect_penalty));
    }

    /// Flush: rewind the cursor to `trace_idx` (the op to re-fetch first)
    /// and redirect. Used by forwarding-error recovery.
    pub fn flush_to(&mut self, trace_idx: usize, cycle: u64) {
        self.cursor = trace_idx;
        self.mode = Mode::RedirectUntil(cycle + u64::from(self.redirect_penalty));
    }

    /// Whether fetch is currently stalled on an unresolved mispredict (used
    /// by deadlock diagnostics).
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        matches!(self.mode, Mode::Stalled | Mode::WrongPath { .. })
    }

    /// The cycle an in-progress redirect ends, if one is in progress (the
    /// event-driven scheduler uses this to bound idle-cycle skips).
    #[must_use]
    pub fn redirect_resume_cycle(&self) -> Option<u64> {
        match self.mode {
            Mode::RedirectUntil(at) => Some(at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_isa::{ArchReg, TraceBuilder};

    fn x(n: u8) -> ArchReg {
        ArchReg::int(n)
    }

    #[test]
    fn streams_in_order_until_exhausted() {
        let mut b = TraceBuilder::new("t");
        b.alu(x(1), None, None);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 5);
        assert!(matches!(fe.next_op(0), Some((Fetched::Correct(0), _))));
        assert!(matches!(fe.next_op(0), Some((Fetched::Correct(1), _))));
        assert!(fe.next_op(0).is_none());
        assert!(fe.exhausted());
    }

    #[test]
    fn mispredict_without_block_stalls_then_redirects() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 5);
        assert!(matches!(fe.next_op(0), Some((Fetched::Correct(0), _))));
        assert!(fe.next_op(1).is_none(), "stalled behind the mispredict");
        assert!(fe.is_stalled());
        fe.branch_resolved(10);
        assert!(fe.next_op(12).is_none(), "redirect penalty");
        assert!(matches!(fe.next_op(15), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn mispredict_with_block_injects_wrong_path() {
        let mut b = TraceBuilder::new("t");
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(br, vec![MicroOp::nop(), MicroOp::nop()]);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        fe.next_op(0).unwrap();
        assert!(matches!(fe.next_op(1), Some((Fetched::WrongPath(0), _))));
        assert!(matches!(fe.next_op(1), Some((Fetched::WrongPath(1), _))));
        assert!(fe.next_op(2).is_none(), "transient window exhausted");
        fe.branch_resolved(8);
        assert!(matches!(fe.next_op(11), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn flush_rewinds_cursor() {
        let mut b = TraceBuilder::new("t");
        b.alu(x(1), None, None);
        b.load(x(2), x(1), 0x40, 8);
        b.alu(x(3), Some(x(2)), None);
        let mut fe = Frontend::new(b.build(), 2);
        fe.next_op(0);
        fe.next_op(0);
        fe.next_op(0);
        fe.flush_to(1, 10);
        assert!(fe.next_op(11).is_none());
        assert!(matches!(fe.next_op(12), Some((Fetched::Correct(1), _))));
        assert!(matches!(fe.next_op(12), Some((Fetched::Correct(2), _))));
    }

    #[test]
    fn exhausted_is_false_while_stalled() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        let mut fe = Frontend::new(b.build(), 1);
        fe.next_op(0);
        assert!(!fe.exhausted(), "a mispredict is still in flight");
    }

    // --- Mode state-machine invariants, tested directly ----------------

    /// Regression test for the `branch_resolved` invariant: a spurious
    /// resolution (no pending mispredict) must panic even in release —
    /// under the old `debug_assert!` this silently started a redirect.
    #[test]
    #[should_panic(expected = "resolution without a pending mispredict")]
    fn spurious_resolution_in_normal_mode_panics() {
        let mut b = TraceBuilder::new("t");
        b.alu(x(1), None, None);
        let mut fe = Frontend::new(b.build(), 5);
        fe.branch_resolved(10);
    }

    #[test]
    #[should_panic(expected = "resolution without a pending mispredict")]
    fn spurious_resolution_during_redirect_panics() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        let mut fe = Frontend::new(b.build(), 5);
        fe.next_op(0);
        fe.branch_resolved(3); // legal: Stalled -> RedirectUntil
        fe.branch_resolved(4); // spurious: already redirecting
    }

    #[test]
    #[should_panic(expected = "consume while fetch cannot deliver")]
    fn consume_while_stalled_panics() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        let mut fe = Frontend::new(b.build(), 5);
        fe.next_op(0); // Normal -> Stalled
        fe.consume();
    }

    #[test]
    fn wrong_path_exhaustion_keeps_fetch_stalled_until_resolution() {
        let mut b = TraceBuilder::new("t");
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(br, vec![MicroOp::nop()]);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 2);
        fe.next_op(0).unwrap(); // the branch
        fe.next_op(0).unwrap(); // the single wrong-path op
                                // Block exhausted: peek yields nothing, but the mode is still
                                // wrong-path (is_stalled) and the trace is not exhausted.
        assert!(fe.peek(5).is_none());
        assert!(fe.is_stalled());
        assert!(!fe.exhausted());
        fe.branch_resolved(5);
        assert_eq!(fe.redirect_resume_cycle(), Some(7));
        assert!(matches!(fe.next_op(7), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn redirect_expires_exactly_at_resume_cycle() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        fe.next_op(0);
        fe.branch_resolved(10);
        assert_eq!(fe.redirect_resume_cycle(), Some(13));
        assert!(fe.peek(12).is_none(), "cycle 12 still redirecting");
        assert!(fe.peek(13).is_some(), "cycle 13 delivers");
        // Retiring the redirect is a peek side effect: the resume cycle
        // is gone afterwards.
        assert_eq!(fe.redirect_resume_cycle(), None);
    }

    #[test]
    fn flush_during_stall_overrides_the_pending_mispredict() {
        let mut b = TraceBuilder::new("t");
        b.alu(x(1), None, None);
        b.branch(Some(x(1)), None, true, true);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 2);
        fe.next_op(0);
        fe.next_op(0); // branch -> Stalled
        assert!(fe.is_stalled());
        fe.flush_to(0, 10); // forwarding-error recovery wins
        assert!(!fe.is_stalled());
        assert!(matches!(fe.next_op(12), Some((Fetched::Correct(0), _))));
    }

    #[test]
    fn flush_during_wrong_path_abandons_the_block() {
        let mut b = TraceBuilder::new("t");
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(br, vec![MicroOp::nop(), MicroOp::nop()]);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 2);
        fe.next_op(0).unwrap();
        assert!(matches!(fe.next_op(0), Some((Fetched::WrongPath(0), _))));
        fe.flush_to(1, 10);
        assert!(matches!(fe.next_op(12), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn flush_during_redirect_restarts_the_penalty() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 4);
        fe.next_op(0);
        fe.branch_resolved(10); // RedirectUntil(14)
        fe.flush_to(0, 12); // RedirectUntil(16)
        assert_eq!(fe.redirect_resume_cycle(), Some(16));
        assert!(fe.peek(15).is_none());
        assert!(matches!(fe.next_op(16), Some((Fetched::Correct(0), _))));
    }

    // --- consume_with: the modelled predictor's override ----------------

    #[test]
    fn override_can_turn_a_well_predicted_branch_into_a_stall() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, false); // statically well-predicted
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        let (f, _) = fe.peek(0).unwrap();
        assert_eq!(f, Fetched::Correct(0));
        fe.consume_with(Some(true)); // predictor got it wrong
        assert!(fe.is_stalled());
        fe.branch_resolved(5);
        assert!(matches!(fe.next_op(8), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn override_can_ride_through_a_statically_mispredicted_branch() {
        let mut b = TraceBuilder::new("t");
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(br, vec![MicroOp::nop()]);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        fe.peek(0).unwrap();
        fe.consume_with(Some(false)); // predictor got it right
        assert!(!fe.is_stalled(), "no stall when the prediction is correct");
        assert!(matches!(fe.next_op(0), Some((Fetched::Correct(1), _))));
    }

    #[test]
    fn override_mispredict_still_injects_an_attached_block() {
        let mut b = TraceBuilder::new("t");
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(br, vec![MicroOp::nop()]);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        fe.peek(0).unwrap();
        fe.consume_with(Some(true));
        assert!(matches!(fe.next_op(0), Some((Fetched::WrongPath(0), _))));
    }

    #[test]
    fn no_override_is_byte_identical_to_consume() {
        let mut b = TraceBuilder::new("t");
        b.branch(Some(x(1)), None, true, true);
        b.alu(x(2), None, None);
        let mut fe = Frontend::new(b.build(), 3);
        fe.peek(0).unwrap();
        fe.consume_with(None);
        assert!(fe.is_stalled(), "static bit still governs");
    }
}
