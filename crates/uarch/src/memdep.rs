//! Memory-dependence prediction (store-set style, simplified).
//!
//! §6 of the paper: loads may speculatively bypass older stores with
//! unknown addresses; a detected forwarding error flushes the load and
//! everything younger. BOOM bounds the cost of repeated violations with a
//! memory-dependence predictor; this module models the minimal version the
//! simulator needs — a load that has *already* caused a forwarding
//! violation is not allowed to bypass unknown store addresses again, it
//! waits instead.
//!
//! Without this, a load whose aliasing store has a very slow address
//! operand can livelock: speculate → flush → replay → speculate against
//! the *same* still-unresolved store. With it, the second attempt waits.

use sb_isa::MixHasher;
use std::collections::HashSet;
use std::hash::BuildHasherDefault;

/// Learns which loads must not bypass unresolved store addresses.
///
/// Loads are identified by their trace index (the dynamic-trace analogue
/// of a PC). The table is bounded; at capacity it resets, and offenders
/// re-train on their next violation.
#[derive(Clone, Debug)]
pub struct MemDepPredictor {
    violators: HashSet<usize, BuildHasherDefault<MixHasher>>,
    capacity: usize,
    trained: u64,
}

impl MemDepPredictor {
    /// A predictor holding at most `capacity` known violators.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "predictor needs capacity");
        MemDepPredictor {
            violators: HashSet::default(),
            capacity,
            trained: 0,
        }
    }

    /// Whether the load at `trace_idx` may speculatively bypass an older
    /// store with an unknown address.
    #[must_use]
    pub fn may_bypass(&self, trace_idx: usize) -> bool {
        // Fast path: most runs never record a violation, and this check
        // sits on the load-issue hot path.
        self.violators.is_empty() || !self.violators.contains(&trace_idx)
    }

    /// Records a forwarding violation by the load at `trace_idx`.
    pub fn train_violation(&mut self, trace_idx: usize) {
        if self.violators.len() >= self.capacity && !self.violators.contains(&trace_idx) {
            self.violators.clear();
        }
        self.violators.insert(trace_idx);
        self.trained += 1;
    }

    /// Total violations trained (diagnostics).
    #[must_use]
    pub fn violations_trained(&self) -> u64 {
        self.trained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_predictor_allows_bypass() {
        let p = MemDepPredictor::new(8);
        assert!(p.may_bypass(42));
    }

    #[test]
    fn violation_blocks_future_bypass() {
        let mut p = MemDepPredictor::new(8);
        p.train_violation(42);
        assert!(!p.may_bypass(42));
        assert!(p.may_bypass(43), "other loads unaffected");
        assert_eq!(p.violations_trained(), 1);
    }

    #[test]
    fn capacity_reset_retrains() {
        let mut p = MemDepPredictor::new(2);
        p.train_violation(1);
        p.train_violation(2);
        p.train_violation(3); // resets, then inserts 3
        assert!(p.may_bypass(1));
        assert!(p.may_bypass(2));
        assert!(!p.may_bypass(3));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MemDepPredictor::new(0);
    }
}
