//! Register renaming substrate: the register alias table (RAT) and free
//! list, with walk-back rollback state kept per instruction (the simulator
//! restores squashed state by unwinding the ROB tail; the *cost* of
//! checkpoints is charged by `sb-timing` from `max_br_tags`).

use sb_isa::{ArchReg, PhysReg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// The register alias table: architectural → physical mapping.
#[derive(Clone, Debug)]
pub struct Rat {
    map: [PhysReg; NUM_ARCH_REGS],
}

impl Rat {
    /// Identity-initialized RAT: architectural register `i` maps to physical
    /// register `i`.
    #[must_use]
    pub fn new() -> Self {
        let mut map = [PhysReg::new(0); NUM_ARCH_REGS];
        for (i, slot) in map.iter_mut().enumerate() {
            *slot = PhysReg::new(i as u16);
        }
        Rat { map }
    }

    /// Current mapping of `r`.
    #[must_use]
    pub fn lookup(&self, r: ArchReg) -> PhysReg {
        self.map[r.index()]
    }

    /// Remaps `r` to `p`, returning the previous mapping (stored in the ROB
    /// entry for commit-time freeing and squash-time rollback).
    pub fn remap(&mut self, r: ArchReg, p: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[r.index()], p)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Self::new()
    }
}

/// The physical-register free list.
///
/// Registers `0..NUM_ARCH_REGS` start allocated (they back the initial RAT);
/// the remainder are free.
#[derive(Clone, Debug)]
pub struct FreeList {
    free: VecDeque<PhysReg>,
    total: usize,
}

impl FreeList {
    /// A free list for a file of `total` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `total` cannot back the architectural state.
    #[must_use]
    pub fn new(total: usize) -> Self {
        assert!(total > NUM_ARCH_REGS, "PRF must exceed architectural state");
        FreeList {
            free: (NUM_ARCH_REGS..total)
                .map(|i| PhysReg::new(i as u16))
                .collect(),
            total,
        }
    }

    /// Pops a free register, or `None` (rename must stall).
    pub fn allocate(&mut self) -> Option<PhysReg> {
        self.free.pop_front()
    }

    /// Returns a register to the pool (commit frees the *previous* mapping;
    /// squash frees the *new* mapping).
    pub fn release(&mut self, p: PhysReg) {
        debug_assert!(
            !self.free.contains(&p),
            "double free of physical register {p}"
        );
        self.free.push_back(p);
    }

    /// Free registers remaining.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total file size.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rat_starts_identity() {
        let rat = Rat::new();
        assert_eq!(rat.lookup(ArchReg::int(5)).index(), 5);
        assert_eq!(rat.lookup(ArchReg::fp(0)).index(), 32);
    }

    #[test]
    fn remap_returns_previous() {
        let mut rat = Rat::new();
        let prev = rat.remap(ArchReg::int(1), PhysReg::new(70));
        assert_eq!(prev.index(), 1);
        assert_eq!(rat.lookup(ArchReg::int(1)).index(), 70);
    }

    #[test]
    fn free_list_excludes_initial_mappings() {
        let mut fl = FreeList::new(80);
        assert_eq!(fl.available(), 80 - NUM_ARCH_REGS);
        let p = fl.allocate().unwrap();
        assert!(p.index() >= NUM_ARCH_REGS);
    }

    #[test]
    fn allocate_release_roundtrip() {
        let mut fl = FreeList::new(66);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        assert_ne!(a, b);
        assert!(fl.allocate().is_none(), "only two spare registers");
        fl.release(a);
        assert_eq!(fl.allocate(), Some(a));
    }

    #[test]
    #[should_panic(expected = "exceed architectural")]
    fn tiny_prf_rejected() {
        let _ = FreeList::new(NUM_ARCH_REGS);
    }
}
