//! The cycle-level out-of-order core.
//!
//! One [`Core`] simulates one workload trace on one configuration under one
//! secure-speculation scheme. Stages are evaluated oldest-work-first each
//! cycle: commit, shadow resolution, writeback, issue (wakeup/select with
//! scheme gates), broadcast drain, and rename/dispatch. The scheme
//! mechanisms themselves live in `sb-core`; this module wires them into the
//! pipeline at the points §4 and §5 of the paper describe.
//!
//! Notable modelled behaviours, each traceable to a paper section:
//! * STT-Rename computes YRoTs for a whole dispatch group through the
//!   same-cycle chain (§4.1, Figure 3) and gates transmitters on untaint
//!   *broadcasts*, which lag the visibility point by a cycle (§9.1).
//! * STT-Issue computes YRoTs live at select; a tainted transmitter wastes
//!   its issue slot as a nop (§4.3 step 4) and is masked until broadcast.
//! * Stores are unified micro-ops that can partially issue; under
//!   STT-Rename the unified YRoT blocks address generation when only the
//!   data operand is tainted — the `exchange2` forwarding-error pathology
//!   (§9.2). The `split_store_taints` ablation lifts this.
//! * NDA decouples load data writeback from broadcast; speculative loads
//!   broadcast only when the visibility point passes them, at most
//!   memory-width broadcasts per cycle (§5.1), and NDA drops speculative
//!   load-hit scheduling.

use crate::config::{CoreConfig, Fidelity};
use crate::frontend::{Fetched, Frontend};
use crate::inst::{Inst, Phase};
use crate::memdep::MemDepPredictor;
use crate::rename::{FreeList, Rat};
use sb_core::{
    BroadcastQueue, IssueTaintUnit, RenameGroupOp, RenameTaintTracker, Scheme, SchemeConfig,
    ShadowKind, SpeculationTracker, ThreatModel,
};
use sb_isa::{OpClass, PhysReg, Seq, Trace};
use sb_mem::{AccessKind, MemoryHierarchy, ServedBy};
use sb_stats::SimStats;
use std::collections::{BTreeMap, VecDeque};

/// Store-to-load forwarding latency in cycles.
const FORWARD_LATENCY: u32 = 3;

/// Cycle value meaning "not scheduled".
const NEVER: u64 = u64::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    /// Result of a non-store op (or a load's data) becomes available.
    Complete,
    /// A store's address-generation part finishes: address visible in the
    /// SQ, forwarding-error checks run (§6).
    StoreAddr,
    /// A store's data part finishes.
    StoreData,
}

/// What the LSU decides for a load that wants to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LoadPlan {
    /// Read from the cache hierarchy; no older store interferes.
    Cache,
    /// Read from the cache while an older store address is still unknown —
    /// memory-dependence speculation (D-shadow risk).
    SpeculatePastStore,
    /// Forward from the store with this sequence number.
    Forward(Seq),
    /// An older matching store's data is not ready yet; retry later.
    Wait,
}

/// The simulated core.
pub struct Core {
    config: CoreConfig,
    scheme_cfg: SchemeConfig,

    cycle: u64,
    next_seq: u64,
    rob: VecDeque<Inst>,

    rat: Rat,
    free_list: FreeList,
    /// Cycle each physical register's value becomes available.
    preg_ready_at: Vec<u64>,

    tracker: SpeculationTracker,
    rename_taint: RenameTaintTracker,
    taint_unit: IssueTaintUnit,
    untaint_q: BroadcastQueue<()>,
    nda_q: BroadcastQueue<PhysReg>,
    /// Youngest load seq whose untaint broadcast has reached the issue
    /// slots (lags the tracker by broadcast bandwidth/latency — the
    /// one-cycle disadvantage of STT-Rename, §9.1).
    visible_safe_seq: Seq,

    mem: MemoryHierarchy,
    frontend: Frontend,
    memdep: MemDepPredictor,

    events: BTreeMap<u64, Vec<(u64, Event)>>,
    wasted_slots: BTreeMap<u64, usize>,

    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    br_tags_used: usize,

    stats: SimStats,
    done: bool,
}

impl Core {
    /// Builds a core for `trace` under `config` and `scheme_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    #[must_use]
    pub fn new(config: CoreConfig, scheme_cfg: SchemeConfig, trace: Trace) -> Self {
        config.validate();
        let mut preg_ready_at = vec![NEVER; config.phys_regs];
        for slot in preg_ready_at.iter_mut().take(sb_isa::NUM_ARCH_REGS) {
            *slot = 0;
        }
        Core {
            mem: MemoryHierarchy::new(config.hierarchy),
            frontend: Frontend::new(trace, config.redirect_penalty),
            memdep: MemDepPredictor::new(64),
            free_list: FreeList::new(config.phys_regs),
            taint_unit: IssueTaintUnit::new(config.phys_regs),
            preg_ready_at,
            rat: Rat::new(),
            tracker: SpeculationTracker::new(),
            rename_taint: RenameTaintTracker::new(),
            untaint_q: BroadcastQueue::new(),
            nda_q: BroadcastQueue::new(),
            visible_safe_seq: Seq::ZERO,
            rob: VecDeque::with_capacity(config.rob_entries),
            events: BTreeMap::new(),
            wasted_slots: BTreeMap::new(),
            cycle: 0,
            next_seq: 1,
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            br_tags_used: 0,
            stats: SimStats::new(),
            done: false,
            config,
            scheme_cfg,
        }
    }

    /// Convenience constructor: RTL-fidelity scheme config derived from the
    /// core config (broadcast bandwidth = memory ports), abstract scheme
    /// config for abstract-fidelity cores.
    #[must_use]
    pub fn with_scheme(config: CoreConfig, scheme: Scheme, trace: Trace) -> Self {
        let scheme_cfg = match config.fidelity {
            Fidelity::Rtl => SchemeConfig::rtl(scheme, config.mem_ports),
            Fidelity::Abstract => SchemeConfig::abstract_sim(scheme),
        };
        Core::new(config, scheme_cfg, trace)
    }

    /// The active scheme.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme_cfg.scheme
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Collected statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The memory hierarchy (the attack examples probe it).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable memory access (attack preparation: flushing probe arrays).
    pub fn memory_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// Longest same-cycle YRoT chain the rename stage has needed so far
    /// (STT-Rename timing-model input).
    #[must_use]
    pub fn max_rename_chain(&self) -> u32 {
        self.rename_taint.max_chain_depth()
    }

    /// Whether the trace has fully committed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs until the trace is fully committed or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> &SimStats {
        while !self.done && self.cycle < max_cycles {
            self.step();
        }
        &self.stats
    }

    /// Runs to completion, panicking if the core fails to finish within
    /// `max_cycles` (a deadlock diagnostic for tests).
    ///
    /// # Panics
    ///
    /// Panics if the trace does not commit within `max_cycles`.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> &SimStats {
        self.run(max_cycles);
        assert!(
            self.done,
            "core did not finish within {max_cycles} cycles: cycle={}, rob={}, \
             fetch_stalled={}, shadows={}, head={:?}",
            self.cycle,
            self.rob.len(),
            self.frontend.is_stalled(),
            self.tracker.len(),
            self.rob.front().map(|i| (i.seq, i.op.class, i.phase)),
        );
        &self.stats
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        if self.done {
            return;
        }
        self.commit();
        self.writeback();
        self.issue();
        self.drain_broadcasts();
        self.dispatch();
        self.cycle += 1;
        self.stats.cycles.incr();
        if self.frontend.exhausted() && self.rob.is_empty() {
            self.done = true;
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut retired = 0usize;
        for _ in 0..self.config.width {
            let Some(head) = self.rob.front() else { break };
            if !head.is_completed() {
                break;
            }
            retired += 1;
            let inst = self.rob.pop_front().expect("head exists");
            debug_assert!(!inst.wrong_path, "wrong-path op reached commit");
            if let Some(prev) = inst.prev_preg {
                self.free_list.release(prev);
            }
            if inst.br_tag {
                self.br_tags_used -= 1;
            }
            match inst.op.class {
                OpClass::Load => {
                    self.lq_count -= 1;
                    self.stats.committed_loads.incr();
                    if self.scheme_cfg.threat_model == ThreatModel::Futuristic {
                        // The load is bound to commit: its M/E shadow ends.
                        self.tracker.resolve(inst.seq);
                    }
                }
                OpClass::Store => {
                    self.sq_count -= 1;
                    self.stats.committed_stores.incr();
                    let mem = inst.op.mem.expect("store has address");
                    let out = self.mem.access(mem.addr, AccessKind::Write);
                    self.record_cache_outcome(out.served_by);
                    self.stats.prefetches.add(u64::from(out.prefetches_issued));
                }
                OpClass::Branch => {
                    self.stats.committed_branches.incr();
                }
                _ => {}
            }
            self.stats.committed.incr();
        }
        if retired == 0 {
            self.attribute_stall();
        }
    }

    /// TraceDoctor-style attribution (§7): when nothing retires this cycle,
    /// classify what the ROB head is waiting for.
    fn attribute_stall(&mut self) {
        let Some(head) = self.rob.front() else {
            self.stats.stalls.frontend.incr();
            return;
        };
        match head.phase {
            Phase::Executing => {
                if head.op.is_load() || head.op.is_store() {
                    self.stats.stalls.memory.incr();
                } else {
                    self.stats.stalls.execution.incr();
                }
            }
            Phase::Waiting => {
                if head.taint_masked {
                    self.stats.stalls.scheme.incr();
                } else if self.scheme_cfg.scheme == Scheme::Nda
                    && head
                        .src_pregs
                        .iter()
                        .flatten()
                        .any(|p| self.preg_ready_at[p.index()] == NEVER)
                {
                    // Waiting on a delayed (not-yet-broadcast) load value.
                    self.stats.stalls.scheme.incr();
                } else if self.srcs_ready(head) {
                    self.stats.stalls.execution.incr();
                } else {
                    self.stats.stalls.dataflow.incr();
                }
            }
            Phase::Completed => {
                // Completed head with zero retires cannot happen (it would
                // have retired above); attribute defensively to execution.
                self.stats.stalls.execution.incr();
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        while let Some((&at, _)) = self.events.iter().next() {
            if at > self.cycle {
                break;
            }
            let due: Vec<(u64, Event)> = self.events.remove(&at).unwrap_or_default();
            for (seq_val, event) in due {
                let seq = Seq::new(seq_val);
                let Some(idx) = self.rob_index(seq) else {
                    continue; // squashed
                };
                match event {
                    Event::Complete => self.complete_inst(idx),
                    Event::StoreAddr => self.store_addr_done(idx),
                    Event::StoreData => {
                        let inst = &mut self.rob[idx];
                        inst.data_done = true;
                        if inst.addr_done {
                            inst.phase = Phase::Completed;
                        }
                    }
                }
            }
        }
    }

    fn complete_inst(&mut self, idx: usize) {
        let cycle = self.cycle;
        let scheme = self.scheme_cfg.scheme;
        let (seq, is_load, is_branch, mispredicted, wrong_path, dst) = {
            let inst = &mut self.rob[idx];
            inst.phase = Phase::Completed;
            (
                inst.seq,
                inst.op.is_load(),
                inst.op.is_branch(),
                inst.op.is_mispredicted(),
                inst.wrong_path,
                inst.dst_preg,
            )
        };

        if is_branch {
            self.rob[idx].cshadow_resolved = true;
            self.tracker.resolve(seq);
            if mispredicted && !wrong_path {
                self.stats.branch_mispredicts.incr();
                self.squash_tail(Seq::new(seq.value() + 1));
                self.frontend.branch_resolved(cycle);
            }
            return;
        }

        if is_load && scheme == Scheme::Nda {
            // §5.1: the data write and the broadcast are decoupled onto a
            // split bus; every load's readiness rides the broadcast
            // network (bounded by memory width), and speculative loads
            // additionally wait for the visibility point.
            let p = dst.expect("load has destination");
            if self.tracker.is_speculative(seq) {
                self.rob[idx].spec_source = true;
                self.stats.delayed_transmitters.incr();
            }
            self.nda_q.push(seq, p);
        }
    }

    fn store_addr_done(&mut self, idx: usize) {
        let cycle = self.cycle;
        let (store_seq, store_mem) = {
            let inst = &mut self.rob[idx];
            inst.addr_done = true;
            if inst.data_done {
                inst.phase = Phase::Completed;
            }
            (inst.seq, inst.op.mem.expect("store has address"))
        };
        // The store's address is known: its D-shadow resolves (§2.1 — the
        // aliasing uncertainty that made younger instructions speculative
        // is gone once the forwarding check below has run).
        self.tracker.resolve(store_seq);
        // Forwarding-error check (§6): younger executed loads overlapping
        // this store that did not forward from it read stale data and must
        // flush, together with everything after them.
        let mut flush_target: Option<(Seq, usize)> = None;
        for inst in &self.rob {
            if inst.seq <= store_seq || !inst.op.is_load() || !inst.executed || inst.wrong_path {
                continue;
            }
            let Some(lmem) = inst.op.mem else { continue };
            if lmem.overlaps(&store_mem) && inst.fwd_src != Some(store_seq) {
                if let Some(tidx) = inst.trace_idx {
                    flush_target = Some((inst.seq, tidx));
                    break; // ROB is seq-ordered: first hit is oldest
                }
            }
        }
        if let Some((lseq, tidx)) = flush_target {
            self.stats.forwarding_errors.incr();
            self.memdep.train_violation(tidx);
            self.squash_tail(lseq);
            self.frontend.flush_to(tidx, cycle);
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    /// Whether a taint root has been declared safe at the issue slots
    /// (untaint broadcast observed).
    fn root_safe(&self, root: Option<Seq>) -> bool {
        root.is_none_or(|r| r <= self.visible_safe_seq)
    }

    fn src_ready(&self, inst: &Inst, i: usize) -> bool {
        inst.src_pregs[i].is_none_or(|p| self.preg_ready_at[p.index()] <= self.cycle)
    }

    fn srcs_ready(&self, inst: &Inst) -> bool {
        self.src_ready(inst, 0) && self.src_ready(inst, 1)
    }

    fn issue(&mut self) {
        let mut budget = self
            .config
            .width
            .saturating_sub(self.wasted_slots.remove(&self.cycle).unwrap_or(0));
        let mut mem_budget = self.config.mem_ports;
        let scheme = self.scheme_cfg.scheme;

        let min_age = u64::from(self.config.dispatch_latency);
        let mut idx = 0;
        while idx < self.rob.len() && budget > 0 {
            if self.rob[idx].phase != Phase::Waiting
                || self.cycle < self.rob[idx].dispatch_cycle + min_age
            {
                idx += 1;
                continue;
            }
            match self.rob[idx].op.class {
                OpClass::Store => {
                    self.try_issue_store(idx, &mut budget, &mut mem_budget, scheme);
                }
                OpClass::Load => {
                    self.try_issue_load(idx, &mut budget, &mut mem_budget, scheme);
                }
                _ => {
                    self.try_issue_simple(idx, &mut budget, scheme);
                }
            }
            idx += 1;
        }
    }

    /// STT-Rename gate: roots were computed at rename; the entry may only
    /// issue once the untaint broadcast has declared them safe.
    fn stt_rename_gate(&mut self, idx: usize, roots: [Option<Seq>; 2]) -> bool {
        let ok = self.root_safe(roots[0]) && self.root_safe(roots[1]);
        if !ok && !self.rob[idx].taint_masked {
            self.rob[idx].taint_masked = true;
            self.stats.delayed_transmitters.incr();
        }
        ok
    }

    /// STT-Issue gate over an explicit operand subset (stores gate their
    /// address part on the address operand only — the §9.2 advantage).
    ///
    /// First attempt computes the YRoT live in the taint unit; discovering
    /// a live taint turns the selected slot into a nop (§4.3 step 4) and
    /// masks the entry until the untaint broadcast arrives.
    fn stt_issue_gate(
        &mut self,
        idx: usize,
        srcs: [Option<PhysReg>; 2],
        budget: &mut usize,
    ) -> bool {
        if self.rob[idx].taint_masked {
            let ok = self.root_safe(self.rob[idx].yrot);
            if ok {
                self.rob[idx].taint_masked = false;
            }
            return ok;
        }
        let tracker = &self.tracker;
        let yrot = self
            .taint_unit
            .compute_yrot(srcs, |root| tracker.taint_live(root));
        match yrot {
            None => true,
            Some(root) => {
                self.rob[idx].yrot = Some(root);
                self.rob[idx].taint_masked = true;
                *budget = budget.saturating_sub(1);
                self.stats.wasted_issue_slots.incr();
                self.stats.delayed_transmitters.incr();
                false
            }
        }
    }

    fn try_issue_simple(&mut self, idx: usize, budget: &mut usize, scheme: Scheme) {
        if !self.srcs_ready(&self.rob[idx]) {
            return;
        }
        if self.rob[idx].op.is_branch() {
            let ok = match scheme {
                Scheme::Baseline | Scheme::Nda => true,
                Scheme::SttRename => {
                    let roots = [self.rob[idx].yrot, None];
                    self.stt_rename_gate(idx, roots)
                }
                Scheme::SttIssue => {
                    let srcs = self.rob[idx].src_pregs;
                    self.stt_issue_gate(idx, srcs, budget)
                }
            };
            if !ok {
                return;
            }
        } else if scheme == Scheme::SttIssue {
            // Non-transmitter: executes freely but propagates taint (§3.1).
            let srcs = self.rob[idx].src_pregs;
            let tracker = &self.tracker;
            let yrot = self
                .taint_unit
                .compute_yrot(srcs, |root| tracker.taint_live(root));
            if let Some(dst) = self.rob[idx].dst_preg {
                match yrot {
                    Some(root) => {
                        self.taint_unit.taint(dst, root);
                        self.stats.taints_applied.incr();
                    }
                    None => self.taint_unit.clean(dst),
                }
            }
        }

        let lat = self.rob[idx].op.class.exec_latency();
        let seq = self.rob[idx].seq;
        let done_at = self.cycle + u64::from(lat);
        self.rob[idx].phase = Phase::Executing;
        self.rob[idx].complete_at = Some(done_at);
        if let Some(dst) = self.rob[idx].dst_preg {
            self.preg_ready_at[dst.index()] = done_at;
        }
        self.schedule(done_at, seq, Event::Complete);
        self.iq_count -= 1;
        *budget -= 1;
    }

    fn try_issue_load(
        &mut self,
        idx: usize,
        budget: &mut usize,
        mem_budget: &mut usize,
        scheme: Scheme,
    ) {
        if *mem_budget == 0 || !self.srcs_ready(&self.rob[idx]) {
            return;
        }
        // Transmitter gate on the address operand.
        let ok = match scheme {
            Scheme::Baseline | Scheme::Nda => true,
            Scheme::SttRename => {
                let roots = [self.rob[idx].yrot, None];
                self.stt_rename_gate(idx, roots)
            }
            Scheme::SttIssue => {
                let srcs = [self.rob[idx].src_pregs[0], None];
                self.stt_issue_gate(idx, srcs, budget)
            }
        };
        if !ok {
            return;
        }

        let plan = self.plan_load(idx);
        if plan == LoadPlan::Wait {
            return;
        }
        let seq = self.rob[idx].seq;
        let addr = self.rob[idx].op.mem.expect("load has address").addr;
        let latency = match plan {
            LoadPlan::Forward(src) => {
                self.rob[idx].fwd_src = Some(src);
                FORWARD_LATENCY
            }
            LoadPlan::Cache | LoadPlan::SpeculatePastStore => {
                if plan == LoadPlan::SpeculatePastStore {
                    self.rob[idx].mem_speculated = true;
                    self.stats.memdep_speculations.incr();
                }
                let out = self.mem.access(addr, AccessKind::Read);
                self.record_cache_outcome(out.served_by);
                self.stats.prefetches.add(u64::from(out.prefetches_issued));
                // Speculative load-hit scheduling: a miss replays the
                // dependents that were woken optimistically; NDA removes
                // this logic entirely (§5.1).
                if out.served_by != ServedBy::L1 && scheme.allows_load_hit_speculation() {
                    if let Some(dst) = self.rob[idx].dst_preg {
                        let has_dependent = self
                            .rob
                            .iter()
                            .any(|i| i.phase == Phase::Waiting && i.src_pregs.contains(&Some(dst)));
                        if has_dependent {
                            self.stats.replay_events.incr();
                            let at = self.cycle + u64::from(self.config.hierarchy.l1d.latency);
                            *self.wasted_slots.entry(at).or_insert(0) += 1;
                        }
                    }
                }
                out.latency
            }
            LoadPlan::Wait => unreachable!("filtered above"),
        };

        let done_at = self.cycle + u64::from(latency);
        let speculative = self.tracker.is_speculative(seq);
        let dst = self.rob[idx].dst_preg;
        {
            let inst = &mut self.rob[idx];
            inst.phase = Phase::Executing;
            inst.executed = true;
            inst.complete_at = Some(done_at);
        }
        if scheme == Scheme::Nda {
            // Availability decided at completion (delayed if speculative).
            if let Some(d) = dst {
                self.preg_ready_at[d.index()] = NEVER;
            }
        } else if let Some(d) = dst {
            self.preg_ready_at[d.index()] = done_at;
        }
        if scheme == Scheme::SttIssue {
            if let Some(d) = dst {
                if speculative {
                    self.taint_unit.taint(d, seq);
                    self.rob[idx].spec_source = true;
                    self.stats.taints_applied.incr();
                } else {
                    self.taint_unit.clean(d);
                }
            }
        } else if scheme == Scheme::SttRename && speculative {
            self.rob[idx].spec_source = true;
        }
        self.schedule(done_at, seq, Event::Complete);
        self.iq_count -= 1;
        *budget -= 1;
        *mem_budget -= 1;
    }

    /// Scans older stores (youngest-first) for the load at `idx`.
    fn plan_load(&self, idx: usize) -> LoadPlan {
        let load = &self.rob[idx];
        let lmem = load.op.mem.expect("load has address");
        for inst in self.rob.iter().take(idx).rev() {
            if !inst.op.is_store() {
                continue;
            }
            if !inst.addr_done {
                // An address-generation already in flight lands before the
                // load's own SQ search would complete: wait rather than
                // speculate against a one-cycle race. Known violators (the
                // memory-dependence predictor, §6) also wait.
                let may_bypass = load
                    .trace_idx
                    .is_none_or(|t| self.memdep.may_bypass(t));
                return if inst.addr_launched || !may_bypass {
                    LoadPlan::Wait
                } else {
                    LoadPlan::SpeculatePastStore
                };
            }
            let smem = inst.op.mem.expect("store has address");
            if smem.overlaps(&lmem) {
                return if inst.data_done {
                    LoadPlan::Forward(inst.seq)
                } else {
                    LoadPlan::Wait
                };
            }
        }
        LoadPlan::Cache
    }

    fn try_issue_store(
        &mut self,
        idx: usize,
        budget: &mut usize,
        mem_budget: &mut usize,
        scheme: Scheme,
    ) {
        // BOOM stores are a single micro-op that can partially issue
        // whenever either operand is ready (§9.2); the taint gate differs
        // per scheme and per part.
        let split = self.scheme_cfg.split_store_taints;

        // Address part (consumes a memory port).
        if !self.rob[idx].addr_launched
            && *budget > 0
            && *mem_budget > 0
            && self.src_ready(&self.rob[idx], 0)
        {
            let ok = match scheme {
                Scheme::Baseline | Scheme::Nda => true,
                Scheme::SttRename => {
                    // Unified micro-op: the YRoT covers *both* operands, so
                    // the address part is blocked by a tainted data operand
                    // (the exchange2 pathology) unless split taints are on.
                    let roots = if split {
                        [self.rob[idx].addr_yrot, None]
                    } else {
                        [self.rob[idx].yrot, None]
                    };
                    self.stt_rename_gate(idx, roots)
                }
                Scheme::SttIssue => {
                    // Natural split: only the address operand is inspected.
                    let srcs = [self.rob[idx].src_pregs[0], None];
                    self.stt_issue_gate(idx, srcs, budget)
                }
            };
            if ok {
                let seq = self.rob[idx].seq;
                self.rob[idx].addr_launched = true;
                self.schedule(self.cycle + 1, seq, Event::StoreAddr);
                *budget -= 1;
                *mem_budget -= 1;
            }
        }

        // Data part (integer-side issue slot, no memory port).
        if !self.rob[idx].data_launched && *budget > 0 && self.src_ready(&self.rob[idx], 1) {
            let ok = match scheme {
                Scheme::Baseline | Scheme::Nda | Scheme::SttIssue => true,
                Scheme::SttRename => {
                    if split {
                        true
                    } else {
                        let roots = [self.rob[idx].yrot, None];
                        self.stt_rename_gate(idx, roots)
                    }
                }
            };
            if ok {
                let seq = self.rob[idx].seq;
                self.rob[idx].data_launched = true;
                self.schedule(self.cycle + 1, seq, Event::StoreData);
                *budget -= 1;
            }
        }

        // The store leaves the issue queue once both parts have launched.
        if self.rob[idx].addr_launched && self.rob[idx].data_launched {
            self.rob[idx].phase = Phase::Executing;
            self.iq_count -= 1;
        }
    }

    fn schedule(&mut self, at: u64, seq: Seq, event: Event) {
        self.events.entry(at).or_default().push((seq.value(), event));
    }

    fn record_cache_outcome(&mut self, served_by: ServedBy) {
        match served_by {
            ServedBy::L1 => self.stats.l1d_hits.incr(),
            ServedBy::L2 => {
                self.stats.l1d_misses.incr();
                self.stats.l2_hits.incr();
            }
            ServedBy::Dram => {
                self.stats.l1d_misses.incr();
                self.stats.l2_misses.incr();
            }
        }
    }

    // ------------------------------------------------------------------
    // Broadcast drain
    // ------------------------------------------------------------------

    fn drain_broadcasts(&mut self) {
        let bw = self.scheme_cfg.broadcast_bandwidth;
        match self.scheme_cfg.scheme {
            Scheme::SttRename | Scheme::SttIssue => {
                let tracker = &self.tracker;
                let sent = self
                    .untaint_q
                    .drain_ready(|s| !tracker.is_speculative(s), bw);
                if let Some((last, ())) = sent.last() {
                    self.visible_safe_seq = self.visible_safe_seq.max(*last);
                }
                self.stats.scheme_broadcasts.add(sent.len() as u64);
            }
            Scheme::Nda => {
                let tracker = &self.tracker;
                let sent = self.nda_q.drain_ready(|s| !tracker.is_speculative(s), bw);
                let when = self.cycle + 1;
                for (_, preg) in &sent {
                    self.preg_ready_at[preg.index()] = when;
                }
                self.stats.scheme_broadcasts.add(sent.len() as u64);
            }
            Scheme::Baseline => {}
        }
    }

    // ------------------------------------------------------------------
    // Dispatch / rename
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let scheme = self.scheme_cfg.scheme;
        let mut group: Vec<usize> = Vec::new(); // ROB indices dispatched this cycle
        let mut blocked_by_brtag = false;
        let mut blocked_by_resource = false;

        for _ in 0..self.config.width {
            let Some((fetched, op)) = self.frontend.peek(self.cycle) else {
                break;
            };
            // Structural checks before consuming.
            if self.rob.len() >= self.config.rob_entries || self.iq_count >= self.config.iq_entries
            {
                blocked_by_resource = true;
                break;
            }
            match op.class {
                OpClass::Load if self.lq_count >= self.config.lq_entries => {
                    blocked_by_resource = true;
                    break;
                }
                OpClass::Store if self.sq_count >= self.config.sq_entries => {
                    blocked_by_resource = true;
                    break;
                }
                OpClass::Branch if self.br_tags_used >= self.config.max_br_tags => {
                    blocked_by_brtag = true;
                    break;
                }
                _ => {}
            }
            if op.dest().is_some() && self.free_list.available() == 0 {
                blocked_by_resource = true;
                break;
            }

            self.frontend.consume();
            let seq = Seq::new(self.next_seq);
            self.next_seq += 1;
            let (trace_idx, wrong_path) = match fetched {
                Fetched::Correct(i) => (Some(i), false),
                Fetched::WrongPath(_) => (None, true),
            };
            let mut inst = Inst::new(seq, trace_idx, op, wrong_path);
            inst.dispatch_cycle = self.cycle;

            // Rename.
            for (i, src) in [op.src1, op.src2].into_iter().enumerate() {
                if let Some(r) = src.filter(|r| !r.is_zero()) {
                    inst.src_pregs[i] = Some(self.rat.lookup(r));
                }
            }
            if let Some(d) = op.dest() {
                let p = self.free_list.allocate().expect("availability checked");
                inst.prev_preg = Some(self.rat.remap(d, p));
                inst.dst_preg = Some(p);
                self.preg_ready_at[p.index()] = NEVER;
                self.taint_unit.clean(p);
            }

            // Shadows: cast after the op observes whether *older* shadows
            // exist (a shadow does not cover its caster).
            match op.class {
                OpClass::Branch => {
                    self.tracker.cast(seq, ShadowKind::Control);
                    inst.br_tag = true;
                    self.br_tags_used += 1;
                }
                OpClass::Load => {
                    self.lq_count += 1;
                    if self.scheme_cfg.threat_model == ThreatModel::Futuristic {
                        // §6: the Futuristic model also tracks memory-
                        // consistency and exception speculation. A load may
                        // fault or be squashed by a consistency violation
                        // until it is bound to commit, so it casts a shadow
                        // of its own, resolved at commit.
                        self.tracker.cast(seq, ShadowKind::Memory);
                    }
                    if scheme.is_stt() {
                        // Every load broadcasts once it becomes
                        // non-speculative (§4.4).
                        self.untaint_q.push(seq, ());
                    }
                }
                OpClass::Store => {
                    // A store with an unresolved address casts a D-shadow:
                    // younger loads may forward stale data past it (§2.1,
                    // §6). Resolved when address generation completes.
                    self.tracker.cast(seq, ShadowKind::Data);
                    self.sq_count += 1;
                }
                _ => {}
            }

            self.iq_count += 1;
            self.rob.push_back(inst);
            group.push(self.rob.len() - 1);
        }

        if group.is_empty() {
            if blocked_by_brtag {
                self.stats.checkpoint_stalls.incr();
            } else if blocked_by_resource {
                self.stats.dispatch_stalls.incr();
            }
            return;
        }

        // STT-Rename: the same-cycle YRoT chain over the dispatch group
        // (§4.1, Figure 3).
        if scheme == Scheme::SttRename {
            let ops: Vec<RenameGroupOp> = group
                .iter()
                .map(|&i| {
                    let inst = &self.rob[i];
                    RenameGroupOp {
                        seq: inst.seq,
                        srcs: [
                            inst.op.src1.filter(|r| !r.is_zero()),
                            inst.op.src2.filter(|r| !r.is_zero()),
                        ],
                        dst: inst.op.dest(),
                        is_load: inst.op.is_load(),
                        speculative: self.tracker.is_speculative(inst.seq),
                    }
                })
                .collect();
            let tracker = &self.tracker;
            let outcomes = self
                .rename_taint
                .rename_group(&ops, |root| tracker.taint_live(root));
            for ((&i, op), out) in group.iter().zip(&ops).zip(&outcomes) {
                let inst = &mut self.rob[i];
                inst.yrot = out.yrot;
                inst.addr_yrot = out.addr_yrot;
                inst.data_yrot = out.data_yrot;
                inst.prev_taint = out.prev_dst_taint;
                if inst.op.is_load() && op.speculative {
                    inst.spec_source = true;
                }
                if out.yrot.is_some() {
                    self.stats.taints_applied.incr();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Removes every instruction with `seq >= first_removed`, restoring
    /// rename and taint state by walking the ROB tail youngest-first.
    fn squash_tail(&mut self, first_removed: Seq) {
        let survivor = Seq::new(first_removed.value().saturating_sub(1));
        while let Some(tail) = self.rob.back() {
            if tail.seq < first_removed {
                break;
            }
            let inst = self.rob.pop_back().expect("tail exists");
            self.stats.squashed.incr();
            if inst.phase == Phase::Waiting {
                self.iq_count -= 1;
            }
            match inst.op.class {
                OpClass::Load => self.lq_count -= 1,
                OpClass::Store => self.sq_count -= 1,
                OpClass::Branch if inst.br_tag => {
                    self.br_tags_used -= 1;
                }
                _ => {}
            }
            if let (Some(d), Some(p)) = (inst.op.dest(), inst.dst_preg) {
                let prev = inst.prev_preg.expect("dest implies previous mapping");
                self.rat.remap(d, prev);
                self.free_list.release(p);
                self.preg_ready_at[p.index()] = NEVER;
                self.taint_unit.clean(p);
                if self.scheme_cfg.scheme == Scheme::SttRename {
                    self.rename_taint.set_taint(d, inst.prev_taint);
                }
            }
        }
        self.tracker.squash_younger(survivor);
        self.untaint_q.squash_younger(survivor);
        self.nda_q.squash_younger(survivor);
    }

    fn rob_index(&self, seq: Seq) -> Option<usize> {
        // Sequence numbers are never reused, so the ROB is seq-sorted but
        // not contiguous (squashed numbers leave gaps): binary search.
        self.rob.binary_search_by(|i| i.seq.cmp(&seq)).ok()
    }
}

impl Core {
    /// Temporary debug introspection (head entry summary).
    #[doc(hidden)]
    pub fn debug_head(&self) -> String {
        match self.rob.front() {
            Some(i) => format!(
                "seq={:?} class={:?} phase={:?} complete_at={:?} addr_l={} data_l={} srcs={:?} events={:?} fl_avail={}",
                i.seq, i.op.class, i.phase, i.complete_at, i.addr_launched, i.data_launched,
                i.src_pregs, self.events.keys().take(3).collect::<Vec<_>>(), self.free_list.available()
            ),
            None => "empty".into(),
        }
    }
}
