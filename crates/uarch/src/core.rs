//! The cycle-level out-of-order core.
//!
//! One [`Core`] simulates one workload trace on one configuration under one
//! secure-speculation scheme. Stages are evaluated oldest-work-first each
//! cycle: commit, shadow resolution, writeback, issue (wakeup/select with
//! scheme gates), broadcast drain, and rename/dispatch. The scheme
//! mechanisms themselves live in `sb-core`; this module wires them into the
//! pipeline at the points §4 and §5 of the paper describe.
//!
//! # Scheduler architecture
//!
//! The simulator ships two wakeup/select implementations selected by
//! [`CoreConfig::scheduler`], producing cycle-for-cycle identical
//! [`SimStats`] (guarded by the `golden_stats` differential test):
//!
//! * [`SchedulerKind::Reference`] — the straightforward model: every cycle
//!   walks the whole ROB looking for issuable entries, every load re-scans
//!   all older stores, and every store-address completion re-scans all
//!   younger loads. Per-cycle cost is O(ROB) to O(ROB²) — simple, and kept
//!   as the oracle.
//! * [`SchedulerKind::EventWheel`] (default) — per-cycle work proportional
//!   to *events*: an age-ordered ready ring (a two-bit-per-slot bitmap in
//!   packed age order) fed by per-physical-register waiter lists (wakeup
//!   touches only instructions whose operand just became ready), a
//!   taint-masked parking lot keyed by youngest root of taint (drained as
//!   the untaint visibility point advances), per-store waiter lists for
//!   loads the LSU refused, dispatch-time LQ/SQ queue marks that slice
//!   the store-search and forwarding-error scans directly (no per-load
//!   binary search), per-preg dependent counts making the
//!   load-hit-speculation replay check O(1), a bucketed calendar queue
//!   replacing the `BTreeMap` event queue, and idle-cycle fast-forward
//!   (provably empty cycles jump straight to the next scheduled event,
//!   replicating their stall statistics). Operand-ready parts enter the
//!   ready ring directly at dispatch; the age-ordered scan stops at the
//!   first entry below the minimum issue age (dispatch cycles are
//!   monotone in arrival order), which removes the per-op retry-wake
//!   round trip entirely.
//!
//! # Instruction layout
//!
//! The ROB is a fixed-capacity arena ([`crate::rob::RobArena`]) of
//! in-place slots, split into a hot, cache-line-sized scheduling record
//! ([`HotInst`], ≤64 bytes — the only thing the per-cycle loops touch)
//! and a cold sidecar ([`ColdInst`]: the decoded micro-op, squash-walk
//! rename state, shadow tokens). Dispatch constructs entries directly in
//! the slab, commit and squash move window bounds instead of moving
//! instructions, and every cross-container reference is a
//! generation-checked [`RobHandle`] so recycled slots can never be read
//! through a stale reference. See `docs/ARCHITECTURE.md` for the
//! field-by-field split and the measured effect.
//!
//! Measured on this repository's `BENCH_core.json` emitter
//! (`cargo run -p sb-experiments --release -- bench`, single shared CPU,
//! Mega × STT-Issue): the event wheel simulates ≈2.2× more micro-ops
//! per second than the reference scheduler on compute-bound profiles
//! (gcc/imagick-like, where shared per-op costs dominate; ≈1.9× before
//! the hot/cold split — against the *pre-split* reference the wheel is
//! now ≈2.6–2.7×) and ≈4× on memory-bound profiles where the ROB stays
//! full (mcf-like). The split sped the reference scheduler up too (≈1.3×:
//! its full-ROB scans stream 64-byte records instead of ~200-byte
//! structs), so the wheel-vs-reference ratio understates the absolute
//! win: the wheel itself got ≈1.35× faster on gcc-like profiles.
//!
//! # Modelled behaviours
//!
//! Notable modelled behaviours, each traceable to a paper section:
//! * STT-Rename computes YRoTs for a whole dispatch group through the
//!   same-cycle chain (§4.1, Figure 3) and gates transmitters on untaint
//!   *broadcasts*, which lag the visibility point by a cycle (§9.1).
//! * STT-Issue computes YRoTs live at select; a tainted transmitter wastes
//!   its issue slot as a nop (§4.3 step 4) and is masked until broadcast.
//! * Stores are unified micro-ops that can partially issue; under
//!   STT-Rename the unified YRoT blocks address generation when only the
//!   data operand is tainted — the `exchange2` forwarding-error pathology
//!   (§9.2). The `split_store_taints` ablation lifts this.
//! * NDA decouples load data writeback from broadcast; speculative loads
//!   broadcast only when the visibility point passes them, at most
//!   memory-width broadcasts per cycle (§5.1), and NDA drops speculative
//!   load-hit scheduling.
//! * Every memory access carries an `sb_mem::Attribution` (sequence
//!   number, speculative-at-access, wrong-path) and squashes are reported
//!   to the hierarchy, so an attached `sb_mem::LeakageObserver` can
//!   charge each cache-state change to its instruction and resolve which
//!   changes were transient — the `verify-security` battery's ground
//!   truth. The issue paths additionally report every memory-port
//!   consumption (load issue, store address generation, forwarding slot)
//!   to an attached `sb_mem::ContentionObserver`, which the battery's
//!   MSHR/port-contention scenario decodes. Observation never perturbs
//!   timing or statistics.

use crate::config::{CoreConfig, Fidelity, SchedulerKind};
use crate::frontend::{Fetched, Frontend};
use crate::inst::{ColdInst, HotInst, Phase};
use crate::memdep::MemDepPredictor;
use crate::predictor::Predictor;
use crate::rename::{FreeList, Rat};
use crate::rob::{RobArena, RobHandle};
use crate::sched::{pack_pos, ArrivalRing, Calendar, Part, PartRef, SchedState, Wake, WastedRing};
use sb_core::{
    BroadcastQueue, IssueTaintUnit, RenameGroupOp, RenameTaintTracker, Scheme, SchemeConfig,
    ShadowKind, SpeculationTracker, ThreatModel,
};
use sb_isa::{OpClass, PhysReg, Seq, Trace};
use sb_mem::{AccessKind, Attribution, MemoryHierarchy, ServedBy};
use sb_stats::SimStats;
use std::collections::BTreeMap;

/// Store-to-load forwarding latency in cycles.
const FORWARD_LATENCY: u32 = 3;

/// Cycle value meaning "not scheduled".
const NEVER: u64 = u64::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    /// Result of a non-store op (or a load's data) becomes available.
    Complete,
    /// A store's address-generation part finishes: address visible in the
    /// SQ, forwarding-error checks run (§6).
    StoreAddr,
    /// A store's data part finishes.
    StoreData,
}

/// One scheduled pipeline event. The arrival index resolves the ROB slot in
/// O(1); the slot generation detects references left dangling by a squash
/// (see [`RobHandle`]).
#[derive(Clone, Copy, Debug)]
struct Scheduled {
    arrival: u64,
    gen: u32,
    event: Event,
}

/// The pipeline event queue: a sorted map for the reference scheduler
/// (matching the seed implementation's event ordering), a bucketed
/// calendar for the event wheel. Both consumers resolve each event's ROB
/// slot through the arena's O(1) generation-checked lookup — the arena
/// made the former per-event binary search free, so the reference path
/// keeps only the seed's queue *ordering* cost model.
#[derive(Debug)]
enum EventQueue {
    Map(BTreeMap<u64, Vec<Scheduled>>),
    Wheel(Calendar<Scheduled>),
}

impl EventQueue {
    fn push(&mut self, now: u64, at: u64, item: Scheduled) {
        match self {
            EventQueue::Map(map) => map.entry(at).or_default().push(item),
            EventQueue::Wheel(cal) => cal.push(now, at, item),
        }
    }

    /// Drains everything due at (or, defensively, before) `now` in schedule
    /// order.
    fn drain_due(&mut self, now: u64, out: &mut Vec<Scheduled>) {
        match self {
            EventQueue::Map(map) => {
                while let Some((&at, _)) = map.iter().next() {
                    if at > now {
                        break;
                    }
                    out.extend(map.remove(&at).unwrap_or_default());
                }
            }
            EventQueue::Wheel(cal) => cal.drain_into(now, out),
        }
    }
}

/// What the LSU decides for a load that wants to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LoadPlan {
    /// Read from the cache hierarchy; no older store interferes.
    Cache,
    /// Read from the cache while an older store address is still unknown —
    /// memory-dependence speculation (D-shadow risk).
    SpeculatePastStore,
    /// Forward from the store with this sequence number.
    Forward(Seq),
    /// An older store (at this arrival index) blocks the load: its address
    /// is unknown, or its data has not arrived; retry when it progresses.
    Wait(u64),
}

/// Replay-wasted issue slots: a sorted map for the reference scheduler
/// (the seed's shape), a ring for the event wheel.
#[derive(Debug)]
enum WastedSlots {
    Map(BTreeMap<u64, usize>),
    Ring(WastedRing),
}

impl WastedSlots {
    fn add(&mut self, now: u64, at: u64, n: usize) {
        match self {
            WastedSlots::Map(map) => *map.entry(at).or_insert(0) += n,
            WastedSlots::Ring(ring) => ring.add(now, at, n),
        }
    }

    fn take(&mut self, now: u64) -> usize {
        match self {
            WastedSlots::Map(map) => map.remove(&now).unwrap_or(0),
            WastedSlots::Ring(ring) => ring.take(now),
        }
    }
}

/// Commit-stall attribution buckets (see `Core::classify_stall`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StallBucket {
    Frontend,
    Memory,
    Execution,
    Scheme,
    Dataflow,
}

/// What the dispatch stage would do this cycle, as assessed by the
/// idle-skip check without mutating anything (mirrors the structural
/// checks at the top of `Core::dispatch` for the first fetched op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DispatchOutlook {
    /// At least one op would dispatch: the cycle is not idle.
    Progress,
    /// Fetch delivers nothing (stalled, redirecting, or exhausted); no
    /// stall counter increments.
    Idle,
    /// Structurally blocked: `dispatch_stalls` increments.
    Resource,
    /// Out of branch tags: `checkpoint_stalls` increments.
    BrTag,
}

/// Outcome of one issue attempt on one schedulable part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Attempt {
    /// The part issued (consuming budget as appropriate).
    Issued,
    /// Operands not available (only reachable from the reference scan).
    NotReady,
    /// Ready, but no memory port is left this cycle; retry next cycle.
    NoMemPort,
    /// A scheme gate masked the part; eligible again once the untaint
    /// broadcast declares this root safe.
    Masked(Seq),
    /// The LSU refused the load; eligible again when the blocking store (at
    /// this arrival index) completes address generation or receives data.
    Blocked(u64),
}

/// The simulated core.
pub struct Core {
    config: CoreConfig,
    scheme_cfg: SchemeConfig,
    scheduler: SchedulerKind,

    cycle: u64,
    next_seq: u64,
    /// The reorder buffer: hot/cold instruction slabs with generation-
    /// checked handles. Arrival indexes count ROB pushes; because the ROB
    /// mutates only at its ends, live position `i` holds arrival
    /// `rob.head_arrival() + i`.
    rob: RobArena,

    rat: Rat,
    free_list: FreeList,
    /// Cycle each physical register's value becomes available.
    preg_ready_at: Vec<u64>,

    tracker: SpeculationTracker,
    rename_taint: RenameTaintTracker,
    taint_unit: IssueTaintUnit,
    untaint_q: BroadcastQueue<()>,
    nda_q: BroadcastQueue<PhysReg>,
    /// Youngest load seq whose untaint broadcast has reached the issue
    /// slots (lags the tracker by broadcast bandwidth/latency — the
    /// one-cycle disadvantage of STT-Rename, §9.1).
    visible_safe_seq: Seq,

    mem: MemoryHierarchy,
    frontend: Frontend,
    memdep: MemDepPredictor,
    /// Modelled frontend predictor (`None` = disabled: the trace's static
    /// mispredict bits drive fetch, bit-identical to the pre-predictor
    /// simulator).
    predictor: Option<Predictor>,

    events: EventQueue,
    event_scratch: Vec<Scheduled>,
    wasted_slots: WastedSlots,

    /// Event-wheel bookkeeping (unused in reference mode).
    sched: SchedState,
    unpark_scratch: Vec<PartRef>,
    group_scratch: Vec<usize>,
    rename_ops_scratch: Vec<RenameGroupOp>,
    nda_scratch: Vec<(Seq, PhysReg)>,
    /// Arrival indexes of in-flight loads, oldest first (the LQ), at
    /// monotone positions (each load records the SQ tail in its
    /// `queue_mark` at dispatch, and vice versa).
    lq: ArrivalRing,
    /// Arrival indexes of in-flight stores, oldest first (the SQ).
    sq: ArrivalRing,
    /// Per physical register: how many phase-`Waiting` instructions name it
    /// as a source (the O(1) replacement for the load-hit-speculation
    /// dependent scan).
    dep_count: Vec<u32>,

    iq_count: usize,
    br_tags_used: usize,

    stats: SimStats,
    done: bool,

    /// Cooperative cancellation: polled every
    /// [`crate::cancel::CANCEL_POLL_CYCLES`] cycles inside [`Core::run`].
    cancel: Option<crate::cancel::CancelToken>,
    /// Set when a run stopped because the token read as cancelled (as
    /// opposed to finishing or exhausting `max_cycles`).
    interrupted: bool,
}

impl Core {
    /// Builds a core for `trace` under `config` and `scheme_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    #[must_use]
    pub fn new(config: CoreConfig, scheme_cfg: SchemeConfig, trace: Trace) -> Self {
        config.validate();
        let mut preg_ready_at = vec![NEVER; config.phys_regs];
        for slot in preg_ready_at.iter_mut().take(sb_isa::NUM_ARCH_REGS) {
            *slot = 0;
        }
        let scheduler = config.scheduler;
        Core {
            mem: MemoryHierarchy::new(config.hierarchy),
            frontend: Frontend::new(trace, config.redirect_penalty),
            memdep: MemDepPredictor::new(64),
            predictor: config.predictor.enabled.then(|| {
                Predictor::new(
                    config.predictor.pht_entries,
                    config.predictor.btb_entries,
                    config.predictor.ghr_bits,
                )
            }),
            free_list: FreeList::new(config.phys_regs),
            taint_unit: IssueTaintUnit::new(config.phys_regs),
            preg_ready_at,
            rat: Rat::new(),
            tracker: SpeculationTracker::new(),
            rename_taint: RenameTaintTracker::new(),
            untaint_q: BroadcastQueue::new(),
            nda_q: BroadcastQueue::new(),
            visible_safe_seq: Seq::ZERO,
            rob: RobArena::new(config.rob_entries),
            events: match scheduler {
                SchedulerKind::Reference => EventQueue::Map(BTreeMap::new()),
                SchedulerKind::EventWheel => EventQueue::Wheel(Calendar::new()),
            },
            event_scratch: Vec::new(),
            wasted_slots: match scheduler {
                SchedulerKind::Reference => WastedSlots::Map(BTreeMap::new()),
                SchedulerKind::EventWheel => WastedSlots::Ring(WastedRing::new()),
            },
            sched: SchedState::new(config.phys_regs, config.rob_entries),
            unpark_scratch: Vec::new(),
            group_scratch: Vec::new(),
            rename_ops_scratch: Vec::new(),
            nda_scratch: Vec::new(),
            lq: ArrivalRing::new(config.lq_entries),
            sq: ArrivalRing::new(config.sq_entries),
            dep_count: vec![0; config.phys_regs],
            cycle: 0,
            next_seq: 1,
            iq_count: 0,
            br_tags_used: 0,
            stats: SimStats::new(),
            done: false,
            cancel: None,
            interrupted: false,
            scheduler,
            config,
            scheme_cfg,
        }
    }

    /// Convenience constructor: RTL-fidelity scheme config derived from the
    /// core config (broadcast bandwidth = memory ports), abstract scheme
    /// config for abstract-fidelity cores.
    #[must_use]
    pub fn with_scheme(config: CoreConfig, scheme: Scheme, trace: Trace) -> Self {
        let scheme_cfg = match config.fidelity {
            Fidelity::Rtl => SchemeConfig::rtl(scheme, config.mem_ports),
            Fidelity::Abstract => SchemeConfig::abstract_sim(scheme),
        };
        Core::new(config, scheme_cfg, trace)
    }

    /// The active scheme.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme_cfg.scheme
    }

    /// The full scheme configuration (including the threat model).
    #[must_use]
    pub fn scheme_config(&self) -> SchemeConfig {
        self.scheme_cfg
    }

    /// Number of speculation shadows currently in flight — diagnostic
    /// introspection for the threat-model tests (under the Futuristic
    /// model every in-flight load casts an M-shadow that only resolves
    /// once the load is bound to commit, so this count differs between
    /// models on identical traces).
    #[must_use]
    pub fn shadows_in_flight(&self) -> usize {
        self.tracker.len()
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Collected statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The memory hierarchy (the attack examples probe it).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable memory access (attack preparation: flushing probe arrays).
    pub fn memory_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// Longest same-cycle YRoT chain the rename stage has needed so far
    /// (STT-Rename timing-model input).
    #[must_use]
    pub fn max_rename_chain(&self) -> u32 {
        self.rename_taint.max_chain_depth()
    }

    /// Whether the trace has fully committed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Attaches a cooperative cancellation token: [`Core::run`] polls it
    /// every [`crate::cancel::CANCEL_POLL_CYCLES`] cycles and stops early
    /// (setting [`Core::interrupted`]) once it reads as cancelled. A job
    /// runner uses this to enforce soft per-job deadlines and batch-wide
    /// run budgets without preemption.
    pub fn set_cancel_token(&mut self, token: crate::cancel::CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether the last [`Core::run`] stopped because the attached
    /// cancellation token fired (rather than finishing the trace or
    /// exhausting its cycle limit).
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Runs until the trace is fully committed, `max_cycles` elapse, or an
    /// attached [`crate::cancel::CancelToken`] reads as cancelled (polled
    /// at cycle-batch granularity; see [`Core::set_cancel_token`]).
    pub fn run(&mut self, max_cycles: u64) -> &SimStats {
        let Some(token) = self.cancel.clone() else {
            // No token attached: the loop stays branch-free on the poll
            // (the common path for tests and single-shot runs).
            while !self.done && self.cycle < max_cycles {
                self.step();
            }
            return &self.stats;
        };
        self.interrupted = false;
        let mut next_poll = self.cycle + crate::cancel::CANCEL_POLL_CYCLES;
        while !self.done && self.cycle < max_cycles {
            self.step();
            // `>=` rather than `==`: idle fast-forward can jump the cycle
            // counter past any particular value.
            if self.cycle >= next_poll {
                if token.is_cancelled() {
                    self.interrupted = true;
                    break;
                }
                next_poll = self.cycle + crate::cancel::CANCEL_POLL_CYCLES;
            }
        }
        &self.stats
    }

    /// Runs to completion, panicking if the core fails to finish within
    /// `max_cycles` (a deadlock diagnostic for tests).
    ///
    /// # Panics
    ///
    /// Panics if the trace does not commit within `max_cycles`.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> &SimStats {
        self.run(max_cycles);
        assert!(
            self.done,
            "core did not finish within {max_cycles} cycles: cycle={}, rob={}, \
             fetch_stalled={}, shadows={}, head={:?}",
            self.cycle,
            self.rob.len(),
            self.frontend.is_stalled(),
            self.tracker.len(),
            self.rob.front().map(|i| (i.seq, i.class, i.phase)),
        );
        &self.stats
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        if self.done {
            return;
        }
        self.commit();
        self.writeback();
        self.issue();
        self.drain_broadcasts();
        self.dispatch();
        self.cycle += 1;
        self.stats.cycles.incr();
        if self.frontend.exhausted() && self.rob.is_empty() {
            self.done = true;
            return;
        }
        if self.scheduler == SchedulerKind::EventWheel {
            self.try_skip_idle();
        }
    }

    /// Event-wheel fast-forward: when the upcoming cycles provably do
    /// nothing — no commit (head incomplete), no issue (ready ring clear),
    /// no broadcast (queue front still speculative), no dispatch progress —
    /// jump straight to the next cycle with a scheduled event, wakeup, or
    /// fetch-redirect expiry, replicating the per-cycle statistics the
    /// skipped cycles would have recorded. All pipeline state is constant
    /// across the gap by construction: it only changes at events, and the
    /// skip stops at the first one.
    fn try_skip_idle(&mut self) {
        // Commit would retire something.
        if self.rob.front().is_some_and(HotInst::is_completed) {
            return;
        }
        // Select would find a candidate.
        if !self.sched.ready.is_clear() {
            return;
        }
        // A broadcast would drain (advancing the visibility point or
        // publishing NDA data).
        let drainable = match self.scheme_cfg.scheme {
            Scheme::SttRename | Scheme::SttIssue => self
                .untaint_q
                .peek_seq()
                .is_some_and(|s| !self.tracker.is_speculative(s)),
            Scheme::Nda => self
                .nda_q
                .peek_seq()
                .is_some_and(|s| !self.tracker.is_speculative(s)),
            Scheme::Baseline => false,
        };
        if drainable {
            return;
        }
        // Dispatch would consume an op.
        let outlook = self.dispatch_outlook();
        if outlook == DispatchOutlook::Progress {
            return;
        }

        // Nothing can happen before the next event/wakeup/redirect expiry.
        let mut stop = u64::MAX;
        if let EventQueue::Wheel(cal) = &self.events {
            if let Some(at) = cal.next_occupied(self.cycle - 1) {
                stop = stop.min(at);
            }
        }
        if let Some(at) = self.sched.wakes.next_occupied(self.cycle - 1) {
            stop = stop.min(at);
        }
        if let Some(at) = self.frontend.redirect_resume_cycle() {
            stop = stop.min(at);
        }
        if stop == u64::MAX {
            // No future work at all: a genuine deadlock. Let the normal
            // per-cycle path run so `run_to_completion` diagnostics fire.
            return;
        }
        // Bound the jump to one calendar lap so the wasted-slot sweep below
        // stays within a single pass over the ring.
        let stop = stop.min(self.cycle + crate::sched::HORIZON as u64 - 1);
        if stop <= self.cycle {
            return;
        }
        let skipped = stop - self.cycle;

        // Replicate what each skipped cycle would have recorded: a commit
        // stall (zero retires by construction) and, when fetch has an op
        // but no resources, a dispatch stall.
        let bucket = self.classify_stall();
        self.add_stall(bucket, skipped);
        match outlook {
            DispatchOutlook::Resource => self.stats.dispatch_stalls.add(skipped),
            DispatchOutlook::BrTag => self.stats.checkpoint_stalls.add(skipped),
            DispatchOutlook::Idle => {}
            DispatchOutlook::Progress => unreachable!("checked above"),
        }
        // Expire replay-wasted slots the skipped issue stages would have
        // consumed (their budget could not have been used anyway).
        for c in self.cycle..stop {
            let _ = self.wasted_slots.take(c);
        }
        self.stats.cycles.add(skipped);
        self.cycle = stop;
    }

    /// What dispatch would do at the current cycle, mirroring the
    /// structural checks of [`Core::dispatch`]'s first slot without
    /// consuming anything.
    fn dispatch_outlook(&mut self) -> DispatchOutlook {
        let Some((_, op)) = self.frontend.peek(self.cycle) else {
            return DispatchOutlook::Idle;
        };
        if self.rob.len() >= self.config.rob_entries || self.iq_count >= self.config.iq_entries {
            return DispatchOutlook::Resource;
        }
        match op.class {
            OpClass::Load if self.lq.len() >= self.config.lq_entries => {
                return DispatchOutlook::Resource;
            }
            OpClass::Store if self.sq.len() >= self.config.sq_entries => {
                return DispatchOutlook::Resource;
            }
            OpClass::Branch if self.br_tags_used >= self.config.max_br_tags => {
                return DispatchOutlook::BrTag;
            }
            _ => {}
        }
        if op.dest().is_some() && self.free_list.available() == 0 {
            return DispatchOutlook::Resource;
        }
        DispatchOutlook::Progress
    }

    // ------------------------------------------------------------------
    // Arrival-index bookkeeping
    // ------------------------------------------------------------------

    /// Arrival index of the instruction at ROB position `idx`.
    fn arrival_of(&self, idx: usize) -> u64 {
        self.rob.head_arrival() + idx as u64
    }

    /// Resolves a part reference back to a ROB position through the
    /// arena's generation check (a squash may have recycled the arrival
    /// slot for a different instruction). O(1).
    fn resolve_ref(&self, arrival: u64, gen: u32) -> Option<usize> {
        self.rob.resolve(RobHandle { arrival, gen })
    }

    /// Marks `p` available at `at` without scheduling a wakeup: used on the
    /// issue path, where the producer's own `Complete` event (at the same
    /// cycle) doubles as the waiter-list wakeup.
    fn set_preg_ready(&mut self, p: PhysReg, at: u64) {
        self.preg_ready_at[p.index()] = at;
    }

    /// Marks `p` available at `at` and (event wheel) schedules an explicit
    /// wakeup for its waiter list — the NDA broadcast path, which has no
    /// pipeline event at the availability cycle.
    fn set_preg_ready_with_wake(&mut self, p: PhysReg, at: u64) {
        self.preg_ready_at[p.index()] = at;
        if self.scheduler == SchedulerKind::EventWheel {
            self.sched.wakes.push(self.cycle, at, Wake::Preg(p.index()));
        }
    }

    /// Adjusts the per-preg waiting-dependent counts when an instruction
    /// enters or leaves the `Waiting` phase.
    fn dep_adjust(&mut self, srcs: [Option<PhysReg>; 2], delta: i32) {
        let [a, b] = srcs;
        if let Some(p) = a {
            let c = &mut self.dep_count[p.index()];
            debug_assert!(c.checked_add_signed(delta).is_some(), "dep count underflow");
            *c = c.wrapping_add_signed(delta);
        }
        // An instruction counts once, even if both sources name one preg.
        if let Some(p) = b.filter(|p| Some(*p) != a) {
            let c = &mut self.dep_count[p.index()];
            debug_assert!(c.checked_add_signed(delta).is_some(), "dep count underflow");
            *c = c.wrapping_add_signed(delta);
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut retired = 0usize;
        while retired < self.config.width {
            if self.rob.is_empty() {
                break;
            }
            // The slot's contents stay in place: copy the hot record (one
            // cache line) and the one cold field commit needs, then move
            // the window.
            let inst = *self.rob.hot(0);
            if !inst.is_completed() {
                break;
            }
            retired += 1;
            let (prev_preg, shadow_token) = {
                let cold = self.rob.cold(0);
                (cold.prev_preg(), cold.shadow_token())
            };
            let arrival = self.rob.head_arrival();
            self.rob.pop_front();
            debug_assert!(!inst.wrong_path(), "wrong-path op reached commit");
            debug_assert!(
                self.scheduler != SchedulerKind::EventWheel
                    || (!self
                        .sched
                        .ready
                        .contains(pack_pos(arrival, Part::StoreAddr))
                        && !self
                            .sched
                            .ready
                            .contains(pack_pos(arrival, Part::StoreData))),
                "committed slot left a stale ready bit"
            );
            if let Some(prev) = prev_preg {
                self.free_list.release(prev);
            }
            if inst.br_tag() {
                self.br_tags_used -= 1;
            }
            match inst.class {
                OpClass::Load => {
                    debug_assert_eq!(self.lq.front(), Some(arrival));
                    self.lq.pop_front();
                    self.stats.committed_loads.incr();
                    if self.scheme_cfg.threat_model == ThreatModel::Futuristic {
                        // The load is bound to commit: its M/E shadow ends.
                        if let Some(t) = shadow_token {
                            self.tracker.resolve_at(t);
                        }
                    }
                }
                OpClass::Store => {
                    debug_assert_eq!(self.sq.front(), Some(arrival));
                    self.sq.pop_front();
                    self.stats.committed_stores.incr();
                    let mem = inst.mem().expect("store has address");
                    // Stores write the hierarchy at commit: by definition
                    // non-speculative, but still attributed so the leakage
                    // observer's event log is complete.
                    let out = self.mem.access_attributed(
                        mem.addr,
                        AccessKind::Write,
                        Some(Attribution {
                            seq: inst.seq,
                            speculative: false,
                            wrong_path: false,
                        }),
                    );
                    self.record_cache_outcome(out.served_by);
                    self.stats.prefetches.add(u64::from(out.prefetches_issued));
                }
                OpClass::Branch => {
                    self.stats.committed_branches.incr();
                }
                _ => {}
            }
            self.stats.committed.incr();
        }
        if retired == 0 {
            self.attribute_stall();
        }
    }

    /// TraceDoctor-style attribution (§7): when nothing retires this cycle,
    /// classify what the ROB head is waiting for.
    fn attribute_stall(&mut self) {
        let bucket = self.classify_stall();
        self.add_stall(bucket, 1);
    }

    /// The stall bucket the current ROB head state attributes to. Pure
    /// read: the idle-skip path calls this once and multiplies, which is
    /// sound because every input (head phase and flags, `preg_ready_at`
    /// relative to the current cycle) is constant across skipped cycles —
    /// they only change at pipeline events, and skips stop at the next one.
    fn classify_stall(&self) -> StallBucket {
        let Some(head) = self.rob.front() else {
            return StallBucket::Frontend;
        };
        match head.phase {
            Phase::Executing => {
                if head.is_load() || head.is_store() {
                    StallBucket::Memory
                } else {
                    StallBucket::Execution
                }
            }
            Phase::Waiting => {
                if head.taint_masked() {
                    StallBucket::Scheme
                } else if self.scheme_cfg.scheme == Scheme::Nda
                    && head
                        .src_pregs()
                        .into_iter()
                        .flatten()
                        .any(|p| self.preg_ready_at[p.index()] == NEVER)
                {
                    // Waiting on a delayed (not-yet-broadcast) load value.
                    StallBucket::Scheme
                } else if self.srcs_ready(head) {
                    StallBucket::Execution
                } else {
                    StallBucket::Dataflow
                }
            }
            // Completed head with zero retires cannot happen (it would
            // have retired); attribute defensively to execution.
            Phase::Completed => StallBucket::Execution,
        }
    }

    fn add_stall(&mut self, bucket: StallBucket, n: u64) {
        let counter = match bucket {
            StallBucket::Frontend => &mut self.stats.stalls.frontend,
            StallBucket::Memory => &mut self.stats.stalls.memory,
            StallBucket::Execution => &mut self.stats.stalls.execution,
            StallBucket::Scheme => &mut self.stats.stalls.scheme,
            StallBucket::Dataflow => &mut self.stats.stalls.dataflow,
        };
        counter.add(n);
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        let mut due = std::mem::take(&mut self.event_scratch);
        due.clear();
        self.events.drain_due(self.cycle, &mut due);
        let wheel = self.scheduler == SchedulerKind::EventWheel;
        for sch in due.drain(..) {
            // Both paths resolve the slot through the arena's O(1)
            // generation check.
            let Some(idx) = self.resolve_ref(sch.arrival, sch.gen) else {
                continue; // squashed
            };
            match sch.event {
                Event::Complete => {
                    let dst = self.rob.hot(idx).dst_preg();
                    self.complete_inst(idx);
                    // The result is available this cycle: wake the waiter
                    // list here instead of via a separate calendar entry.
                    // (NDA loads publish through the broadcast queue
                    // instead; their waiters keep waiting.)
                    if wheel {
                        if let Some(p) = dst {
                            if self.preg_ready_at[p.index()] <= self.cycle {
                                self.wake_preg_waiters(p.index());
                            }
                        }
                    }
                }
                Event::StoreAddr => {
                    self.store_addr_done(idx);
                    self.wake_store_waiters(sch.arrival);
                }
                Event::StoreData => {
                    let inst = self.rob.hot_mut(idx);
                    inst.set_data_done(true);
                    if inst.addr_done() {
                        inst.phase = Phase::Completed;
                    }
                    self.wake_store_waiters(sch.arrival);
                }
            }
        }
        self.event_scratch = due;
    }

    fn complete_inst(&mut self, idx: usize) {
        let cycle = self.cycle;
        let scheme = self.scheme_cfg.scheme;
        let (seq, is_load, is_branch, mispredicted, wrong_path, dst) = {
            let inst = self.rob.hot_mut(idx);
            inst.phase = Phase::Completed;
            (
                inst.seq,
                inst.is_load(),
                inst.is_branch(),
                inst.is_mispredicted(),
                inst.wrong_path(),
                inst.dst_preg(),
            )
        };

        if is_branch {
            // Modelled predictor: the executing branch trains the tables
            // with its actual outcome — *including* wrong-path branches
            // (squashed work still trains real predictors; PHT/BTB/GHR
            // state is never rolled back, which is exactly the v2 channel
            // family). Under a secure scheme a tainted transient branch is
            // gated from executing until it is squashed, so it never
            // reaches here and never trains: the channel closes. Events
            // from branches that are later squashed become transient via
            // the observer's note_squash, like cache fills.
            if let Some(pred) = self.predictor.as_mut() {
                let cold = self.rob.cold(idx);
                if let (Some(ctrl), Some(pht_idx)) = (cold.op.ctrl, cold.pht_index()) {
                    let ev = pred.train(pht_idx, ctrl.pc, ctrl.taken, ctrl.target);
                    let attr = Attribution {
                        seq,
                        speculative: self.tracker.is_speculative(seq),
                        wrong_path,
                    };
                    for (kind, addr) in ev.iter() {
                        self.mem.note_predictor_update(kind, addr, attr);
                    }
                }
            }
            self.rob.hot_mut(idx).set_cshadow_resolved(true);
            if let Some(t) = self.rob.cold(idx).shadow_token() {
                self.tracker.resolve_at(t);
            }
            if mispredicted && !wrong_path {
                self.stats.branch_mispredicts.incr();
                self.squash_tail(Seq::new(seq.value() + 1));
                self.frontend.branch_resolved(cycle);
            }
            return;
        }

        if is_load && scheme == Scheme::Nda {
            // §5.1: the data write and the broadcast are decoupled onto a
            // split bus; every load's readiness rides the broadcast
            // network (bounded by memory width), and speculative loads
            // additionally wait for the visibility point.
            let p = dst.expect("load has destination");
            if self.tracker.is_speculative(seq) {
                self.rob.hot_mut(idx).set_spec_source(true);
                self.stats.delayed_transmitters.incr();
            }
            self.nda_q.push(seq, p);
        }
    }

    fn store_addr_done(&mut self, idx: usize) {
        let cycle = self.cycle;
        let (store_seq, store_mem) = {
            let inst = self.rob.hot_mut(idx);
            inst.set_addr_done(true);
            if inst.data_done() {
                inst.phase = Phase::Completed;
            }
            (inst.seq, inst.mem().expect("store has address"))
        };
        // The store's address is known: its D-shadow resolves (§2.1 — the
        // aliasing uncertainty that made younger instructions speculative
        // is gone once the forwarding check below has run).
        if let Some(t) = self.rob.cold(idx).shadow_token() {
            self.tracker.resolve_at(t);
        }
        // Forwarding-error check (§6): younger executed loads overlapping
        // this store that did not forward from it read stale data and must
        // flush, together with everything after them.
        let flush_target = match self.scheduler {
            SchedulerKind::Reference => self.forwarding_error_scan(store_seq, store_mem),
            SchedulerKind::EventWheel => self.forwarding_error_indexed(idx, store_seq, store_mem),
        };
        if let Some((lseq, tidx)) = flush_target {
            self.stats.forwarding_errors.incr();
            self.memdep.train_violation(tidx);
            self.squash_tail(lseq);
            self.frontend.flush_to(tidx, cycle);
        }
    }

    /// Reference path: walk the whole ROB for the forwarding-error check.
    fn forwarding_error_scan(
        &self,
        store_seq: Seq,
        store_mem: sb_isa::MemAccess,
    ) -> Option<(Seq, usize)> {
        for idx in 0..self.rob.len() {
            let inst = self.rob.hot(idx);
            if inst.seq <= store_seq || !inst.is_load() || !inst.executed() || inst.wrong_path() {
                continue;
            }
            let Some(lmem) = inst.mem() else { continue };
            if lmem.overlaps(&store_mem) && inst.fwd_src() != Some(store_seq) {
                if let Some(tidx) = self.rob.cold(idx).trace_idx() {
                    return Some((inst.seq, tidx)); // ROB is seq-ordered: first hit is oldest
                }
            }
        }
        None
    }

    /// Event-wheel path: the same check over the LQ index — only loads
    /// younger than the store are visited.
    fn forwarding_error_indexed(
        &self,
        store_idx: usize,
        store_seq: Seq,
        store_mem: sb_isa::MemAccess,
    ) -> Option<(Seq, usize)> {
        // The store's queue mark is the LQ tail position at its dispatch:
        // positions from the mark onward hold exactly the younger loads.
        let from = self.rob.hot(store_idx).queue_mark.max(self.lq.head());
        for pos in from..self.lq.tail() {
            let arrival = self.lq.get(pos);
            let idx = (arrival - self.rob.head_arrival()) as usize;
            let inst = self.rob.hot(idx);
            debug_assert!(inst.is_load() && inst.seq > store_seq);
            if !inst.executed() || inst.wrong_path() {
                continue;
            }
            let Some(lmem) = inst.mem() else { continue };
            if lmem.overlaps(&store_mem) && inst.fwd_src() != Some(store_seq) {
                if let Some(tidx) = self.rob.cold(idx).trace_idx() {
                    return Some((inst.seq, tidx));
                }
            }
        }
        None
    }

    /// Re-examines loads that were parked on the store at `arrival` (its
    /// address or data just made progress). No-op in reference mode, whose
    /// issue stage retries blocked loads every cycle anyway.
    fn wake_store_waiters(&mut self, arrival: u64) {
        if self.scheduler != SchedulerKind::EventWheel {
            return;
        }
        if let Some(waiters) = self.sched.store_waiters.remove(&arrival) {
            for r in waiters {
                self.readmit(r);
            }
        }
    }

    /// Puts a previously-attempted part back in the ready set if it is
    /// still live (parked parts already passed operand and age checks;
    /// neither can regress).
    fn readmit(&mut self, r: PartRef) {
        let (arrival, part, gen) = r;
        let Some(idx) = self.resolve_ref(arrival, gen) else {
            return; // squashed
        };
        if self.rob.hot(idx).phase != Phase::Waiting || self.part_launched(idx, part) {
            return;
        }
        self.sched.ready.insert(pack_pos(arrival, part));
    }

    fn part_launched(&self, idx: usize, part: Part) -> bool {
        match part {
            Part::Whole => false,
            Part::StoreAddr => self.rob.hot(idx).addr_launched(),
            Part::StoreData => self.rob.hot(idx).data_launched(),
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    /// Whether a taint root has been declared safe at the issue slots
    /// (untaint broadcast observed).
    fn root_safe(&self, root: Option<Seq>) -> bool {
        root.is_none_or(|r| r <= self.visible_safe_seq)
    }

    fn src_ready(&self, inst: &HotInst, i: usize) -> bool {
        inst.src_preg(i)
            .is_none_or(|p| self.preg_ready_at[p.index()] <= self.cycle)
    }

    fn srcs_ready(&self, inst: &HotInst) -> bool {
        self.src_ready(inst, 0) && self.src_ready(inst, 1)
    }

    fn issue(&mut self) {
        match self.scheduler {
            SchedulerKind::Reference => self.issue_reference(),
            SchedulerKind::EventWheel => self.issue_wheel(),
        }
    }

    /// The straightforward scheduler: scan every ROB entry, oldest first.
    fn issue_reference(&mut self) {
        let mut budget = self
            .config
            .width
            .saturating_sub(self.wasted_slots.take(self.cycle));
        let mut mem_budget = self.config.mem_ports;

        let min_age = u64::from(self.config.dispatch_latency);
        let mut idx = 0;
        while idx < self.rob.len() && budget > 0 {
            if self.rob.hot(idx).phase != Phase::Waiting
                || self.cycle < self.rob.hot(idx).dispatch_cycle + min_age
            {
                idx += 1;
                continue;
            }
            let handle = self.rob.handle(idx);
            match self.rob.hot(idx).class {
                OpClass::Store => {
                    if !self.rob.hot(idx).addr_launched() {
                        let _ = self.attempt_store_addr(idx, handle, &mut budget, &mut mem_budget);
                    }
                    if !self.rob.hot(idx).data_launched() && budget > 0 {
                        let _ = self.attempt_store_data(idx, handle, &mut budget);
                    }
                    self.finish_store_issue(idx);
                }
                OpClass::Load => {
                    let _ = self.attempt_load(idx, handle, &mut budget, &mut mem_budget);
                }
                _ => {
                    let _ = self.attempt_simple(idx, handle, &mut budget);
                }
            }
            idx += 1;
        }
    }

    /// The event wheel: process due wakeups, then pop the age-ordered ready
    /// set until the issue budget runs out.
    fn issue_wheel(&mut self) {
        self.process_wakes();
        let mut budget = self
            .config
            .width
            .saturating_sub(self.wasted_slots.take(self.cycle));
        let mut mem_budget = self.config.mem_ports;

        // Scan the ready ring in packed-position (age) order. The ring is
        // maintained exactly, so a set bit always refers to the live
        // instruction at that arrival. Entries may still be below the
        // minimum issue age (dispatch inserts operand-ready parts
        // directly, skipping the old retry-wake round trip); because
        // dispatch cycles are monotone in arrival order, the first
        // too-young entry ends the scan — everything younger is too.
        let base = self.rob.head_arrival();
        let min_age = u64::from(self.config.dispatch_latency);
        let mut cursor = pack_pos(base, Part::StoreAddr);
        let end = pack_pos(base + self.rob.len() as u64, Part::StoreAddr);
        self.sched.ready.begin_scan(cursor);
        while budget > 0 && !self.sched.ready.is_clear() {
            let Some(pos) = self.sched.ready.next_ready(cursor, end) else {
                break;
            };
            cursor = pos + 1;
            let arrival = pos / 2;
            let idx = (arrival - base) as usize;
            let (dispatch_cycle, class) = {
                let h = self.rob.hot(idx);
                (h.dispatch_cycle, h.class)
            };
            if self.cycle < dispatch_cycle + min_age {
                break; // below minimum issue age, as is everything younger
            }
            let part = match (pos & 1, class == OpClass::Store) {
                (0, false) => Part::Whole,
                (0, true) => Part::StoreAddr,
                _ => Part::StoreData,
            };
            debug_assert!(
                self.rob.hot(idx).phase == Phase::Waiting && !self.part_launched(idx, part),
                "stale ready bit"
            );
            let handle = self.rob.handle(idx);
            let gen = handle.gen;
            let attempt = match part {
                Part::Whole => match class {
                    OpClass::Load => self.attempt_load(idx, handle, &mut budget, &mut mem_budget),
                    _ => self.attempt_simple(idx, handle, &mut budget),
                },
                Part::StoreAddr => {
                    let a = self.attempt_store_addr(idx, handle, &mut budget, &mut mem_budget);
                    self.finish_store_issue(idx);
                    a
                }
                Part::StoreData => {
                    let a = self.attempt_store_data(idx, handle, &mut budget);
                    self.finish_store_issue(idx);
                    a
                }
            };
            match attempt {
                Attempt::Issued => {
                    self.sched.ready.remove(pos);
                }
                Attempt::NoMemPort => {
                    // Stays ready; the cursor has already moved past it, so
                    // the rest of this cycle's scan continues behind it.
                }
                Attempt::Masked(root) => {
                    self.sched.ready.remove(pos);
                    self.sched.masked.insert((root.value(), arrival, part), gen);
                }
                Attempt::Blocked(store_arrival) => {
                    self.sched.ready.remove(pos);
                    self.sched
                        .store_waiters
                        .entry(store_arrival)
                        .or_default()
                        .push((arrival, part, gen));
                }
                Attempt::NotReady => {
                    // Bookkeeping bug guard: re-route through the waiter
                    // lists rather than spinning in the ready set.
                    debug_assert!(false, "ready-set entry with unready operands");
                    self.sched.ready.remove(pos);
                    self.route_part((arrival, part, gen));
                }
            }
        }
    }

    /// Drains this cycle's wakeups, moving now-eligible parts into the
    /// ready set (or onward to the next waiter list).
    fn process_wakes(&mut self) {
        if self.sched.wakes.is_empty_fast() {
            return;
        }
        let mut wakes = std::mem::take(&mut self.sched.wake_scratch);
        wakes.clear();
        self.sched.wakes.drain_into(self.cycle, &mut wakes);
        for wake in wakes.drain(..) {
            match wake {
                Wake::Preg(p) => self.wake_preg_waiters(p),
            }
        }
        self.sched.wake_scratch = wakes;
    }

    /// Re-examines everything parked on physical register `p`'s waiter
    /// list (its value just became available).
    fn wake_preg_waiters(&mut self, p: usize) {
        if self.sched.preg_waiters[p].is_empty() {
            return;
        }
        // Swap the list out through a recycled buffer so the per-preg
        // vectors aren't reallocated on every wakeup.
        let mut waiters = std::mem::take(&mut self.sched.waiter_scratch);
        std::mem::swap(&mut waiters, &mut self.sched.preg_waiters[p]);
        for r in waiters.drain(..) {
            self.route_part(r);
        }
        if self.sched.preg_waiters[p].is_empty() {
            // Nothing re-registered: hand the capacity back.
            std::mem::swap(&mut waiters, &mut self.sched.preg_waiters[p]);
        }
        self.sched.waiter_scratch = waiters;
    }

    /// Dispatch-time routing for a single-operand part (store halves): wait
    /// on the operand if it is not ready, otherwise enter the ready ring
    /// (the issue scan enforces the minimum issue age).
    fn route_dispatched(&mut self, r: PartRef, src: Option<PhysReg>) {
        match src.filter(|p| self.preg_ready_at[p.index()] > self.cycle) {
            Some(p) => self.sched.preg_waiters[p.index()].push(r),
            None => self.sched.ready.insert(pack_pos(r.0, r.1)),
        }
    }

    /// Routes one schedulable part to the container matching its state:
    /// the waiter list of its first unavailable source, or the ready set
    /// (which admits below-minimum-age parts; the issue scan stops at
    /// them). Silently drops dead references.
    fn route_part(&mut self, r: PartRef) {
        let (arrival, part, gen) = r;
        let Some(idx) = self.resolve_ref(arrival, gen) else {
            return; // squashed
        };
        let inst = self.rob.hot(idx);
        if inst.phase != Phase::Waiting || self.part_launched(idx, part) {
            return;
        }
        let srcs: [Option<PhysReg>; 2] = match part {
            Part::Whole => inst.src_pregs(),
            Part::StoreAddr => [inst.src_preg(0), None],
            Part::StoreData => [inst.src_preg(1), None],
        };
        for p in srcs.into_iter().flatten() {
            if self.preg_ready_at[p.index()] > self.cycle {
                // Wait on one operand at a time: registered nowhere else,
                // so the single-container invariant holds.
                self.sched.preg_waiters[p.index()].push(r);
                return;
            }
        }
        self.sched.ready.insert(pack_pos(arrival, part));
    }

    /// STT-Rename gate: roots were computed at rename; the entry may only
    /// issue once the untaint broadcast has declared them safe.
    fn stt_rename_gate(&mut self, idx: usize, roots: [Option<Seq>; 2]) -> bool {
        let ok = self.root_safe(roots[0]) && self.root_safe(roots[1]);
        if !ok && !self.rob.hot(idx).taint_masked() {
            self.rob.hot_mut(idx).set_taint_masked(true);
            self.stats.delayed_transmitters.incr();
        }
        ok
    }

    /// STT-Issue gate over an explicit operand subset (stores gate their
    /// address part on the address operand only — the §9.2 advantage).
    ///
    /// First attempt computes the YRoT live in the taint unit; discovering
    /// a live taint turns the selected slot into a nop (§4.3 step 4) and
    /// masks the entry until the untaint broadcast arrives.
    fn stt_issue_gate(
        &mut self,
        idx: usize,
        srcs: [Option<PhysReg>; 2],
        budget: &mut usize,
    ) -> bool {
        if self.rob.hot(idx).taint_masked() {
            let ok = self.root_safe(self.rob.hot(idx).yrot());
            if ok {
                self.rob.hot_mut(idx).set_taint_masked(false);
            }
            return ok;
        }
        let tracker = &self.tracker;
        let yrot = self
            .taint_unit
            .compute_yrot(srcs, |root| tracker.taint_live(root));
        match yrot {
            None => true,
            Some(root) => {
                let inst = self.rob.hot_mut(idx);
                inst.set_yrot(root);
                inst.set_taint_masked(true);
                *budget = budget.saturating_sub(1);
                self.stats.wasted_issue_slots.incr();
                self.stats.delayed_transmitters.incr();
                false
            }
        }
    }

    /// Largest gating root (the binding one: every root must pass the
    /// visibility point before the gate opens).
    fn park_root(roots: [Option<Seq>; 2]) -> Seq {
        roots
            .into_iter()
            .flatten()
            .max()
            .expect("a failed gate names at least one root")
    }

    fn attempt_simple(&mut self, idx: usize, handle: RobHandle, budget: &mut usize) -> Attempt {
        // One hot-record load covers every read below (the record is a
        // single cache line; the gates re-touch only its flags word).
        let inst = *self.rob.hot(idx);
        if !self.srcs_ready(&inst) {
            return Attempt::NotReady;
        }
        let scheme = self.scheme_cfg.scheme;
        if inst.is_branch() {
            match scheme {
                Scheme::Baseline | Scheme::Nda => {}
                Scheme::SttRename => {
                    let roots = [inst.yrot(), None];
                    if !self.stt_rename_gate(idx, roots) {
                        return Attempt::Masked(Self::park_root(roots));
                    }
                }
                Scheme::SttIssue => {
                    if !self.stt_issue_gate(idx, inst.src_pregs(), budget) {
                        return Attempt::Masked(self.rob.hot(idx).yrot().expect("gate set a root"));
                    }
                }
            }
        } else if scheme == Scheme::SttIssue {
            // Non-transmitter: executes freely but propagates taint (§3.1).
            let srcs = inst.src_pregs();
            let tracker = &self.tracker;
            let yrot = self
                .taint_unit
                .compute_yrot(srcs, |root| tracker.taint_live(root));
            if let Some(dst) = inst.dst_preg() {
                match yrot {
                    Some(root) => {
                        self.taint_unit.taint(dst, root);
                        self.stats.taints_applied.incr();
                    }
                    None => self.taint_unit.clean(dst),
                }
            }
        }

        let lat = inst.class.exec_latency();
        let done_at = self.cycle + u64::from(lat);
        self.rob.hot_mut(idx).phase = Phase::Executing;
        if let Some(dst) = inst.dst_preg() {
            self.set_preg_ready(dst, done_at);
        }
        self.schedule(done_at, handle, Event::Complete);
        self.iq_count -= 1;
        self.dep_adjust(inst.src_pregs(), -1);
        *budget -= 1;
        Attempt::Issued
    }

    fn attempt_load(
        &mut self,
        idx: usize,
        handle: RobHandle,
        budget: &mut usize,
        mem_budget: &mut usize,
    ) -> Attempt {
        if *mem_budget == 0 {
            return Attempt::NoMemPort;
        }
        // One hot-record load covers every read below (the gates re-touch
        // only its flags word; the planners walk other entries).
        let inst = *self.rob.hot(idx);
        if !self.srcs_ready(&inst) {
            return Attempt::NotReady;
        }
        let scheme = self.scheme_cfg.scheme;
        // Transmitter gate on the address operand.
        match scheme {
            Scheme::Baseline | Scheme::Nda => {}
            Scheme::SttRename => {
                let roots = [inst.yrot(), None];
                if !self.stt_rename_gate(idx, roots) {
                    return Attempt::Masked(Self::park_root(roots));
                }
            }
            Scheme::SttIssue => {
                let srcs = [inst.src_preg(0), None];
                if !self.stt_issue_gate(idx, srcs, budget) {
                    return Attempt::Masked(self.rob.hot(idx).yrot().expect("gate set a root"));
                }
            }
        }

        let plan = match self.scheduler {
            SchedulerKind::Reference => self.plan_load_scan(idx),
            SchedulerKind::EventWheel => self.plan_load_indexed(idx),
        };
        if let LoadPlan::Wait(store_arrival) = plan {
            return Attempt::Blocked(store_arrival);
        }
        let seq = inst.seq;
        let addr = inst.mem().expect("load has address").addr;
        let speculative = self.tracker.is_speculative(seq);
        // Whichever plan the load follows (cache read, bypass, forwarding
        // slot) it consumes a memory port this cycle: report the pressure
        // for an attached contention observer (no-op when detached —
        // observation never perturbs timing or statistics).
        self.mem.note_port_use(Attribution {
            seq,
            speculative,
            wrong_path: inst.wrong_path(),
        });
        let latency = match plan {
            LoadPlan::Forward(src) => {
                self.rob.hot_mut(idx).set_fwd_src(src);
                FORWARD_LATENCY
            }
            LoadPlan::Cache | LoadPlan::SpeculatePastStore => {
                if plan == LoadPlan::SpeculatePastStore {
                    self.rob.hot_mut(idx).set_mem_speculated(true);
                    self.stats.memdep_speculations.incr();
                }
                // Attribute the access for the leakage observer: a load
                // executing under an unresolved shadow (or down a known
                // wrong path) that later squashes has made a transient
                // cache-state change — the side channel the secure schemes
                // must close.
                let out = self.mem.access_attributed(
                    addr,
                    AccessKind::Read,
                    Some(Attribution {
                        seq,
                        speculative,
                        wrong_path: inst.wrong_path(),
                    }),
                );
                self.record_cache_outcome(out.served_by);
                self.stats.prefetches.add(u64::from(out.prefetches_issued));
                // Speculative load-hit scheduling: a miss replays the
                // dependents that were woken optimistically; NDA removes
                // this logic entirely (§5.1).
                if out.served_by != ServedBy::L1 && scheme.allows_load_hit_speculation() {
                    if let Some(dst) = inst.dst_preg() {
                        let has_dependent = match self.scheduler {
                            SchedulerKind::Reference => (0..self.rob.len()).any(|i| {
                                let h = self.rob.hot(i);
                                h.phase == Phase::Waiting && h.src_pregs().contains(&Some(dst))
                            }),
                            SchedulerKind::EventWheel => self.dep_count[dst.index()] > 0,
                        };
                        if has_dependent {
                            self.stats.replay_events.incr();
                            let at = self.cycle + u64::from(self.config.hierarchy.l1d.latency);
                            self.wasted_slots.add(self.cycle, at, 1);
                        }
                    }
                }
                out.latency
            }
            LoadPlan::Wait(_) => unreachable!("filtered above"),
        };

        let done_at = self.cycle + u64::from(latency);
        let (dst, srcs) = (inst.dst_preg(), inst.src_pregs());
        {
            let h = self.rob.hot_mut(idx);
            h.phase = Phase::Executing;
            h.set_executed(true);
        }
        if scheme == Scheme::Nda {
            // Availability decided at completion (delayed if speculative).
            if let Some(d) = dst {
                self.preg_ready_at[d.index()] = NEVER;
            }
        } else if let Some(d) = dst {
            self.set_preg_ready(d, done_at);
        }
        if scheme == Scheme::SttIssue {
            if let Some(d) = dst {
                if speculative {
                    self.taint_unit.taint(d, seq);
                    self.rob.hot_mut(idx).set_spec_source(true);
                    self.stats.taints_applied.incr();
                } else {
                    self.taint_unit.clean(d);
                }
            }
        } else if scheme == Scheme::SttRename && speculative {
            self.rob.hot_mut(idx).set_spec_source(true);
        }
        self.schedule(done_at, handle, Event::Complete);
        self.iq_count -= 1;
        self.dep_adjust(srcs, -1);
        *budget -= 1;
        *mem_budget -= 1;
        Attempt::Issued
    }

    /// Reference path: scan all older ROB entries (youngest first) for the
    /// store that decides the load's plan.
    fn plan_load_scan(&self, idx: usize) -> LoadPlan {
        let load = self.rob.hot(idx);
        let lmem = load.mem().expect("load has address");
        for sidx in (0..idx).rev() {
            let inst = self.rob.hot(sidx);
            if !inst.is_store() {
                continue;
            }
            match self.classify_store(idx, lmem, inst) {
                StoreRelation::NoConflict => {}
                StoreRelation::Decides(plan) => {
                    return match plan {
                        PlanVsStore::Wait => LoadPlan::Wait(self.arrival_of(sidx)),
                        PlanVsStore::Speculate => LoadPlan::SpeculatePastStore,
                        PlanVsStore::Forward => LoadPlan::Forward(inst.seq),
                    }
                }
            }
        }
        LoadPlan::Cache
    }

    /// Event-wheel path: the same search over the SQ index — only stores
    /// are visited, bounded by SQ occupancy instead of ROB occupancy.
    fn plan_load_indexed(&self, idx: usize) -> LoadPlan {
        let load = self.rob.hot(idx);
        let lmem = load.mem().expect("load has address");
        let load_seq = load.seq;
        // The load's queue mark is the SQ tail position at its dispatch:
        // positions below the mark hold exactly the older stores. A squash
        // may have retreated the SQ tail below the mark, so clamp (the
        // squashed stores were younger; committed ones are below `head`,
        // and an empty range falls out naturally when all have committed).
        let upto = load.queue_mark.min(self.sq.tail());
        for pos in (self.sq.head()..upto).rev() {
            let arrival = self.sq.get(pos);
            let inst = self.rob.hot((arrival - self.rob.head_arrival()) as usize);
            debug_assert!(inst.is_store() && inst.seq < load_seq);
            match self.classify_store(idx, lmem, inst) {
                StoreRelation::NoConflict => {}
                StoreRelation::Decides(plan) => {
                    return match plan {
                        PlanVsStore::Wait => LoadPlan::Wait(arrival),
                        PlanVsStore::Speculate => LoadPlan::SpeculatePastStore,
                        PlanVsStore::Forward => LoadPlan::Forward(inst.seq),
                    }
                }
            }
        }
        LoadPlan::Cache
    }

    /// How one older store constrains the load at `load_idx`.
    fn classify_store(
        &self,
        load_idx: usize,
        lmem: sb_isa::MemAccess,
        store: &HotInst,
    ) -> StoreRelation {
        if !store.addr_done() {
            // An address-generation already in flight lands before the
            // load's own SQ search would complete: wait rather than
            // speculate against a one-cycle race. Known violators (the
            // memory-dependence predictor, §6) also wait. The predictor
            // key is the load's trace index — a cold-sidecar read, paid
            // only on this unresolved-address slow path.
            let may_bypass = self
                .rob
                .cold(load_idx)
                .trace_idx()
                .is_none_or(|t| self.memdep.may_bypass(t));
            return StoreRelation::Decides(if store.addr_launched() || !may_bypass {
                PlanVsStore::Wait
            } else {
                PlanVsStore::Speculate
            });
        }
        let smem = store.mem().expect("store has address");
        if smem.overlaps(&lmem) {
            return StoreRelation::Decides(if store.data_done() {
                PlanVsStore::Forward
            } else {
                PlanVsStore::Wait
            });
        }
        StoreRelation::NoConflict
    }

    fn attempt_store_addr(
        &mut self,
        idx: usize,
        handle: RobHandle,
        budget: &mut usize,
        mem_budget: &mut usize,
    ) -> Attempt {
        // BOOM stores are a single micro-op that can partially issue
        // whenever either operand is ready (§9.2); the taint gate differs
        // per scheme and per part. Address generation consumes a memory
        // port.
        debug_assert!(!self.rob.hot(idx).addr_launched());
        if *mem_budget == 0 {
            return Attempt::NoMemPort;
        }
        if !self.src_ready(self.rob.hot(idx), 0) {
            return Attempt::NotReady;
        }
        let split = self.scheme_cfg.split_store_taints;
        match self.scheme_cfg.scheme {
            Scheme::Baseline | Scheme::Nda => {}
            Scheme::SttRename => {
                // Unified micro-op: the YRoT covers *both* operands, so
                // the address part is blocked by a tainted data operand
                // (the exchange2 pathology) unless split taints are on.
                let roots = if split {
                    [self.rob.cold(idx).addr_yrot(), None]
                } else {
                    [self.rob.hot(idx).yrot(), None]
                };
                if !self.stt_rename_gate(idx, roots) {
                    return Attempt::Masked(Self::park_root(roots));
                }
            }
            Scheme::SttIssue => {
                // Natural split: only the address operand is inspected.
                let srcs = [self.rob.hot(idx).src_preg(0), None];
                if !self.stt_issue_gate(idx, srcs, budget) {
                    return Attempt::Masked(self.rob.hot(idx).yrot().expect("gate set a root"));
                }
            }
        }
        // Address generation consumes a memory port: report the pressure
        // for an attached contention observer.
        let (seq, wrong_path) = {
            let h = self.rob.hot(idx);
            (h.seq, h.wrong_path())
        };
        self.mem.note_port_use(Attribution {
            seq,
            speculative: self.tracker.is_speculative(seq),
            wrong_path,
        });
        self.rob.hot_mut(idx).set_addr_launched(true);
        self.schedule(self.cycle + 1, handle, Event::StoreAddr);
        *budget -= 1;
        *mem_budget -= 1;
        Attempt::Issued
    }

    fn attempt_store_data(&mut self, idx: usize, handle: RobHandle, budget: &mut usize) -> Attempt {
        // Data part: integer-side issue slot, no memory port.
        debug_assert!(!self.rob.hot(idx).data_launched());
        if !self.src_ready(self.rob.hot(idx), 1) {
            return Attempt::NotReady;
        }
        let split = self.scheme_cfg.split_store_taints;
        match self.scheme_cfg.scheme {
            Scheme::Baseline | Scheme::Nda | Scheme::SttIssue => {}
            Scheme::SttRename => {
                if !split {
                    let roots = [self.rob.hot(idx).yrot(), None];
                    if !self.stt_rename_gate(idx, roots) {
                        return Attempt::Masked(Self::park_root(roots));
                    }
                }
            }
        }
        self.rob.hot_mut(idx).set_data_launched(true);
        self.schedule(self.cycle + 1, handle, Event::StoreData);
        *budget -= 1;
        Attempt::Issued
    }

    /// The store leaves the issue queue once both parts have launched.
    fn finish_store_issue(&mut self, idx: usize) {
        let inst = self.rob.hot(idx);
        if inst.addr_launched() && inst.data_launched() && inst.phase == Phase::Waiting {
            let srcs = inst.src_pregs();
            self.rob.hot_mut(idx).phase = Phase::Executing;
            self.iq_count -= 1;
            self.dep_adjust(srcs, -1);
        }
    }

    fn schedule(&mut self, at: u64, handle: RobHandle, event: Event) {
        let RobHandle { arrival, gen } = handle;
        self.events.push(
            self.cycle,
            at,
            Scheduled {
                arrival,
                gen,
                event,
            },
        );
    }

    fn record_cache_outcome(&mut self, served_by: ServedBy) {
        match served_by {
            ServedBy::L1 => self.stats.l1d_hits.incr(),
            ServedBy::L2 => {
                self.stats.l1d_misses.incr();
                self.stats.l2_hits.incr();
            }
            ServedBy::Dram => {
                self.stats.l1d_misses.incr();
                self.stats.l2_misses.incr();
            }
        }
    }

    // ------------------------------------------------------------------
    // Broadcast drain
    // ------------------------------------------------------------------

    fn drain_broadcasts(&mut self) {
        let bw = self.scheme_cfg.broadcast_bandwidth;
        match self.scheme_cfg.scheme {
            Scheme::SttRename | Scheme::SttIssue => {
                if self.untaint_q.is_empty() {
                    // Nothing to broadcast, and the visibility point cannot
                    // advance, so no masked part can unpark either (every
                    // masked root was above the visibility point when it
                    // was parked).
                    return;
                }
                // Untaint payloads carry no data (the sequence number is
                // the message): pop in place instead of draining into a
                // buffer.
                let mut sent = 0usize;
                let limit = bw.unwrap_or(usize::MAX);
                while sent < limit {
                    let tracker = &self.tracker;
                    let Some((last, ())) = self.untaint_q.pop_ready(|s| !tracker.is_speculative(s))
                    else {
                        break;
                    };
                    self.visible_safe_seq = self.visible_safe_seq.max(last);
                    sent += 1;
                }
                self.stats.scheme_broadcasts.add(sent as u64);
                if sent > 0 && self.scheduler == SchedulerKind::EventWheel {
                    // Unpark everything whose gating root the broadcast
                    // just declared safe; it competes for issue slots from
                    // the next cycle, like the reference re-scan would.
                    let mut unparked = std::mem::take(&mut self.unpark_scratch);
                    unparked.clear();
                    self.sched.unpark_safe(self.visible_safe_seq, &mut unparked);
                    for r in unparked.drain(..) {
                        self.readmit(r);
                    }
                    self.unpark_scratch = unparked;
                }
            }
            Scheme::Nda => {
                if self.nda_q.is_empty() {
                    return;
                }
                let mut sent = std::mem::take(&mut self.nda_scratch);
                sent.clear();
                let tracker = &self.tracker;
                self.nda_q
                    .drain_ready_into(|s| !tracker.is_speculative(s), bw, &mut sent);
                let when = self.cycle + 1;
                for &(_, preg) in &sent {
                    self.set_preg_ready_with_wake(preg, when);
                }
                self.stats.scheme_broadcasts.add(sent.len() as u64);
                self.nda_scratch = sent;
            }
            Scheme::Baseline => {}
        }
    }

    // ------------------------------------------------------------------
    // Dispatch / rename
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let scheme = self.scheme_cfg.scheme;
        if self.frontend.peek(self.cycle).is_none() {
            // Fetch delivers nothing (stalled, redirecting, or exhausted):
            // nothing below would run and no stall counter increments.
            return;
        }
        // ROB indices dispatched this cycle (recycled buffer).
        let mut group = std::mem::take(&mut self.group_scratch);
        group.clear();
        let mut blocked_by_brtag = false;
        let mut blocked_by_resource = false;

        for _ in 0..self.config.width {
            let Some((fetched, op)) = self.frontend.peek(self.cycle) else {
                break;
            };
            // Structural checks before consuming.
            if self.rob.len() >= self.config.rob_entries || self.iq_count >= self.config.iq_entries
            {
                blocked_by_resource = true;
                break;
            }
            match op.class {
                OpClass::Load if self.lq.len() >= self.config.lq_entries => {
                    blocked_by_resource = true;
                    break;
                }
                OpClass::Store if self.sq.len() >= self.config.sq_entries => {
                    blocked_by_resource = true;
                    break;
                }
                OpClass::Branch if self.br_tags_used >= self.config.max_br_tags => {
                    blocked_by_brtag = true;
                    break;
                }
                _ => {}
            }
            if op.dest().is_some() && self.free_list.available() == 0 {
                blocked_by_resource = true;
                break;
            }

            // Modelled predictor: a correct-path branch is predicted at
            // fetch time, and the *dynamic* decision (wrong direction, or
            // taken with a BTB miss/stale target) overrides the trace's
            // static bit. Wrong-path branches are fetched, not predicted
            // — they only stash their fetch-time PHT index for training.
            // The GHR shifts with the actual outcome right here: a
            // mispredicted branch stalls fetch until it resolves, so no
            // younger correct-path branch can be fetched under stale
            // history, which makes shift-at-fetch exact without
            // checkpointing.
            let mut pht_index = None;
            let mut dyn_mispredict = None;
            let mut ghr_event = None;
            if let (Some(pred), Some(ctrl)) = (self.predictor.as_mut(), op.ctrl) {
                pht_index = Some(pred.pht_index(ctrl.pc));
                if matches!(fetched, Fetched::Correct(_)) {
                    dyn_mispredict = Some(pred.mispredicts(ctrl.pc, ctrl.taken, ctrl.target));
                    ghr_event = pred.shift_ghr(ctrl.taken);
                }
            }
            self.frontend.consume_with(dyn_mispredict);
            let seq = Seq::new(self.next_seq);
            self.next_seq += 1;
            let (trace_idx, wrong_path) = match fetched {
                Fetched::Correct(i) => (Some(i), false),
                Fetched::WrongPath(_) => (None, true),
            };
            if let Some((kind, addr)) = ghr_event {
                self.mem.note_predictor_update(
                    kind,
                    addr,
                    Attribution {
                        seq,
                        speculative: self.tracker.is_speculative(seq),
                        wrong_path,
                    },
                );
            }
            // Construct the entry in place in the arena slot (everything
            // below writes through the slot references; only container
            // fields disjoint from the ROB are touched meanwhile).
            let idx = self.rob.len();
            let (handle, inst, cold) = self.rob.alloc();
            let arrival = handle.arrival;
            *inst = HotInst::new(seq, op, wrong_path);
            *cold = ColdInst::new(op, trace_idx);
            inst.dispatch_cycle = self.cycle;
            if let Some(m) = dyn_mispredict {
                inst.set_mispredicted(m);
            }
            if let Some(i) = pht_index {
                cold.set_pht_index(i);
            }

            // Rename.
            for (i, src) in [op.src1, op.src2].into_iter().enumerate() {
                if let Some(r) = src.filter(|r| !r.is_zero()) {
                    inst.set_src_preg(i, self.rat.lookup(r));
                }
            }
            if let Some(d) = op.dest() {
                let p = self.free_list.allocate().expect("availability checked");
                cold.set_prev_preg(self.rat.remap(d, p));
                inst.set_dst_preg(p);
                self.preg_ready_at[p.index()] = NEVER;
                self.taint_unit.clean(p);
            }

            // Shadows: cast after the op observes whether *older* shadows
            // exist (a shadow does not cover its caster). The LQ/SQ index
            // maintenance rides along (both modes; cheap and keeps the
            // modes structurally identical for the differential tests).
            match op.class {
                OpClass::Branch => {
                    cold.set_shadow_token(self.tracker.cast(seq, ShadowKind::Control));
                    inst.set_br_tag(true);
                    self.br_tags_used += 1;
                }
                OpClass::Load => {
                    if self.scheme_cfg.threat_model == ThreatModel::Futuristic {
                        // §6: the Futuristic model also tracks memory-
                        // consistency and exception speculation. A load may
                        // fault or be squashed by a consistency violation
                        // until it is bound to commit, so it casts a shadow
                        // of its own, resolved at commit.
                        cold.set_shadow_token(self.tracker.cast(seq, ShadowKind::Memory));
                    }
                    if scheme.is_stt() {
                        // Every load broadcasts once it becomes
                        // non-speculative (§4.4).
                        self.untaint_q.push(seq, ());
                    }
                    inst.queue_mark = self.sq.tail();
                    self.lq.push(arrival);
                }
                OpClass::Store => {
                    // A store with an unresolved address casts a D-shadow:
                    // younger loads may forward stale data past it (§2.1,
                    // §6). Resolved when address generation completes.
                    cold.set_shadow_token(self.tracker.cast(seq, ShadowKind::Data));
                    inst.queue_mark = self.lq.tail();
                    self.sq.push(arrival);
                }
                _ => {}
            }

            let srcs = inst.src_pregs();
            self.iq_count += 1;
            group.push(idx);
            self.dep_adjust(srcs, 1);

            // Event wheel: route every schedulable part to its first
            // waiting container. This is `route_part` specialized for the
            // dispatch moment — the instruction is known-live and its
            // sources are already in hand, so no revalidation is needed.
            if self.scheduler == SchedulerKind::EventWheel {
                let gen = handle.gen;
                if op.class == OpClass::Store {
                    self.route_dispatched((arrival, Part::StoreAddr, gen), srcs[0]);
                    self.route_dispatched((arrival, Part::StoreData, gen), srcs[1]);
                } else {
                    let unready = srcs
                        .into_iter()
                        .flatten()
                        .find(|p| self.preg_ready_at[p.index()] > self.cycle);
                    match unready {
                        Some(p) => {
                            self.sched.preg_waiters[p.index()].push((arrival, Part::Whole, gen));
                        }
                        None => self.sched.ready.insert(pack_pos(arrival, Part::Whole)),
                    }
                }
            }
        }

        if group.is_empty() {
            if blocked_by_brtag {
                self.stats.checkpoint_stalls.incr();
            } else if blocked_by_resource {
                self.stats.dispatch_stalls.incr();
            }
            self.group_scratch = group;
            return;
        }

        // STT-Rename: the same-cycle YRoT chain over the dispatch group
        // (§4.1, Figure 3).
        if scheme == Scheme::SttRename {
            let mut ops = std::mem::take(&mut self.rename_ops_scratch);
            ops.clear();
            ops.extend(group.iter().map(|&i| {
                let seq = self.rob.hot(i).seq;
                let op = &self.rob.cold(i).op;
                RenameGroupOp {
                    seq,
                    srcs: [
                        op.src1.filter(|r| !r.is_zero()),
                        op.src2.filter(|r| !r.is_zero()),
                    ],
                    dst: op.dest(),
                    is_load: op.is_load(),
                    speculative: self.tracker.is_speculative(seq),
                }
            }));
            let tracker = &self.tracker;
            let outcomes = self
                .rename_taint
                .rename_group(&ops, |root| tracker.taint_live(root));
            for ((&i, op), out) in group.iter().zip(&ops).zip(&outcomes) {
                let inst = self.rob.hot_mut(i);
                if let Some(root) = out.yrot {
                    inst.set_yrot(root);
                }
                if inst.is_load() && op.speculative {
                    inst.set_spec_source(true);
                }
                let cold = self.rob.cold_mut(i);
                cold.set_split_yrots(out.addr_yrot, out.data_yrot);
                cold.set_prev_taint(out.prev_dst_taint);
                if out.yrot.is_some() {
                    self.stats.taints_applied.incr();
                }
            }
            self.rename_ops_scratch = ops;
        }
        self.group_scratch = group;
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Removes every instruction with `seq >= first_removed`, restoring
    /// rename and taint state by walking the ROB tail youngest-first.
    fn squash_tail(&mut self, first_removed: Seq) {
        let survivor = Seq::new(first_removed.value().saturating_sub(1));
        let squash_end = self.arrival_of(self.rob.len());
        while let Some(tail) = self.rob.back() {
            if tail.seq < first_removed {
                break;
            }
            // The slot's contents stay in place: copy both records out
            // (this is the rare path), then shrink the window.
            let idx = self.rob.len() - 1;
            let inst = *self.rob.hot(idx);
            let cold = *self.rob.cold(idx);
            let arrival = self.arrival_of(idx);
            self.rob.pop_back();
            self.stats.squashed.incr();
            if inst.phase == Phase::Waiting {
                self.iq_count -= 1;
                self.dep_adjust(inst.src_pregs(), -1);
            }
            match inst.class {
                OpClass::Load => {
                    debug_assert_eq!(self.lq.back(), Some(arrival));
                    self.lq.pop_back();
                }
                OpClass::Store => {
                    debug_assert_eq!(self.sq.back(), Some(arrival));
                    self.sq.pop_back();
                }
                OpClass::Branch if inst.br_tag() => {
                    self.br_tags_used -= 1;
                }
                _ => {}
            }
            if let (Some(d), Some(p)) = (cold.op.dest(), inst.dst_preg()) {
                let prev = cold.prev_preg().expect("dest implies previous mapping");
                self.rat.remap(d, prev);
                self.free_list.release(p);
                self.preg_ready_at[p.index()] = NEVER;
                self.taint_unit.clean(p);
                if self.scheme_cfg.scheme == Scheme::SttRename {
                    self.rename_taint.set_taint(d, cold.prev_taint());
                }
            }
        }
        if self.scheduler == SchedulerKind::EventWheel {
            // Everything at or past the first recycled arrival slot is
            // dead; waiter lists, the masked map and pending wakes are
            // cleaned lazily by generation validation instead.
            let first_arrival = self.arrival_of(self.rob.len());
            self.sched.squash_from(first_arrival, squash_end);
        }
        self.tracker.squash_younger(survivor);
        self.untaint_q.squash_younger(survivor);
        self.nda_q.squash_younger(survivor);
        // Cache-state changes made by the squashed instructions are now
        // known transient (no-op unless a leakage observer is attached).
        self.mem.note_squash(first_removed);
    }
}

/// How an older store constrains an issuing load (see
/// [`Core::classify_store`]).
enum StoreRelation {
    /// The store is resolved and does not overlap: keep searching.
    NoConflict,
    /// The store decides the plan: stop searching.
    Decides(PlanVsStore),
}

/// The plan a deciding store imposes.
enum PlanVsStore {
    Wait,
    Speculate,
    Forward,
}

impl Core {
    /// Temporary debug introspection (head entry summary).
    #[doc(hidden)]
    pub fn debug_head(&self) -> String {
        match self.rob.front() {
            Some(i) => format!(
                "seq={:?} class={:?} phase={:?} addr_l={} data_l={} srcs={:?} fl_avail={}",
                i.seq,
                i.class,
                i.phase,
                i.addr_launched(),
                i.data_launched(),
                i.src_pregs(),
                self.free_list.available()
            ),
            None => "empty".into(),
        }
    }
}
