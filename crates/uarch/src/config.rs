//! Core configurations: the paper's four BOOM design points (Table 1) plus
//! the gem5-like configurations of §8.6, and the fidelity knob of §9.5.

use sb_mem::HierarchyConfig;
use std::fmt;

/// Modelling fidelity.
///
/// §9.5 attributes the gap between the paper's RTL results and earlier gem5
/// evaluations to idealizations in abstract simulators. We reproduce both
/// sides with one simulator and this knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// RTL-equivalent constraints: 4-cycle L1, broadcast bandwidth bounded
    /// by memory ports, unified store micro-ops (partial-issue blocking),
    /// bounded branch tags.
    #[default]
    Rtl,
    /// Abstract-simulator (gem5-like) idealizations: single-cycle L1,
    /// unbounded broadcast, split store taints, effectively unbounded branch
    /// tags.
    Abstract,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fidelity::Rtl => "rtl",
            Fidelity::Abstract => "abstract",
        })
    }
}

/// Which wakeup/select implementation the simulator runs.
///
/// Both produce cycle-for-cycle identical [`sb_stats::SimStats`]; the
/// reference path exists as the oracle for the event wheel's golden-stats
/// regression tests and as the baseline for its throughput benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Event-driven scheduler: ready queue + waiter lists + calendar
    /// queue; per-cycle work proportional to events, not ROB occupancy.
    #[default]
    EventWheel,
    /// The straightforward scheduler: full-ROB scan every cycle.
    Reference,
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulerKind::EventWheel => "event-wheel",
            SchedulerKind::Reference => "reference",
        })
    }
}

/// Bumped whenever a simulator change alters `SimStats` for *any*
/// (configuration, trace) pair, so persisted result caches keyed through
/// [`CoreConfig::fingerprint`] invalidate instead of serving statistics an
/// older simulator produced. (The golden-stats differential suite catches
/// unintended behavior changes; intended ones must bump this.)
///
/// Revision history: 1 = initial; 2 = modelled frontend predictor (the
/// predictor-off path is bit-identical to revision 1, but the fingerprint
/// space grew new result-determining fields).
pub const SIM_RESULTS_REVISION: u64 = 2;

/// Modelled frontend branch predictor parameters (gshare + tagged BTB +
/// global history register — see `crate::predictor`).
///
/// Disabled by default: the trace's pre-resolved `mispredicted` bit drives
/// the frontend and all statistics stay bit-identical to a predictor-less
/// simulator. Enabled, the core predicts each correct-path branch at fetch
/// time from predictor state and *derives* the mispredict decision by
/// comparing against the trace's actual outcome; the static bit becomes
/// ground truth for training only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Whether the modelled predictor drives mispredict decisions.
    pub enabled: bool,
    /// Pattern history table entries (2-bit counters); power of two.
    pub pht_entries: usize,
    /// Branch target buffer entries (direct-mapped, tagged); power of two.
    pub btb_entries: usize,
    /// Global history bits folded into the gshare index (0 = pure
    /// per-pc bimodal indexing); at most 32.
    pub ghr_bits: u32,
}

impl PredictorConfig {
    /// The predictor switched off — trace bits drive the frontend.
    #[must_use]
    pub fn disabled() -> Self {
        PredictorConfig {
            enabled: false,
            pht_entries: 64,
            btb_entries: 16,
            ghr_bits: 0,
        }
    }

    /// A small enabled predictor with the given geometry.
    #[must_use]
    pub fn enabled(pht_entries: usize, btb_entries: usize, ghr_bits: u32) -> Self {
        PredictorConfig {
            enabled: true,
            pht_entries,
            btb_entries,
            ghr_bits,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::disabled()
    }
}

/// A core design point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Display name (e.g. `mega`).
    pub name: &'static str,
    /// Fetch/decode/rename/commit width (Table 1 "Core Width").
    pub width: usize,
    /// Loads + store-address issues per cycle (Table 1 "Memory Ports");
    /// also the secure schemes' broadcast bandwidth in RTL fidelity.
    pub mem_ports: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries (in-flight, not-yet-issued micro-ops).
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Physical registers (shared int+fp pool in this model).
    pub phys_regs: usize,
    /// Branch checkpoints (branch tags); rename stalls when exhausted.
    pub max_br_tags: usize,
    /// Front-end refill penalty after a redirect (mispredict or flush).
    pub redirect_penalty: u32,
    /// Cycles between dispatch and earliest issue (decode/rename/dispatch
    /// pipeline depth). This sets the minimum lifetime of a speculation
    /// shadow, which is what makes delayed-broadcast (NDA) and taint
    /// gating (STT) expensive on real pipelines.
    pub dispatch_latency: u32,
    /// Memory hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Modelling fidelity.
    pub fidelity: Fidelity,
    /// Wakeup/select implementation (performance of the *simulator*, not
    /// the simulated core; statistics are identical between kinds).
    pub scheduler: SchedulerKind,
    /// Modelled frontend branch predictor (disabled in every preset; the
    /// security battery's v2 kernels switch it on per-scenario).
    pub predictor: PredictorConfig,
}

impl CoreConfig {
    /// Table 1 "Small": 1-wide, 1 memory port, 32-entry ROB.
    #[must_use]
    pub fn small() -> Self {
        CoreConfig {
            name: "small",
            width: 1,
            mem_ports: 1,
            rob_entries: 32,
            iq_entries: 8,
            lq_entries: 8,
            sq_entries: 8,
            phys_regs: 80,
            max_br_tags: 6,
            redirect_penalty: 5,
            dispatch_latency: 3,
            hierarchy: HierarchyConfig::rtl_default(),
            fidelity: Fidelity::Rtl,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// Table 1 "Medium": 2-wide, 1 memory port, 64-entry ROB.
    #[must_use]
    pub fn medium() -> Self {
        CoreConfig {
            name: "medium",
            width: 2,
            mem_ports: 1,
            rob_entries: 64,
            iq_entries: 16,
            lq_entries: 16,
            sq_entries: 16,
            phys_regs: 112,
            max_br_tags: 8,
            redirect_penalty: 6,
            dispatch_latency: 3,
            hierarchy: HierarchyConfig::rtl_default(),
            fidelity: Fidelity::Rtl,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// Table 1 "Large": 3-wide, 1 memory port, 96-entry ROB.
    #[must_use]
    pub fn large() -> Self {
        CoreConfig {
            name: "large",
            width: 3,
            mem_ports: 1,
            rob_entries: 96,
            iq_entries: 24,
            lq_entries: 24,
            sq_entries: 24,
            phys_regs: 144,
            max_br_tags: 12,
            redirect_penalty: 7,
            dispatch_latency: 3,
            hierarchy: HierarchyConfig::rtl_default(),
            fidelity: Fidelity::Rtl,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// Table 1 "Mega": 4-wide, 2 memory ports, 128-entry ROB — the paper's
    /// default reporting configuration.
    #[must_use]
    pub fn mega() -> Self {
        CoreConfig {
            name: "mega",
            width: 4,
            mem_ports: 2,
            rob_entries: 128,
            iq_entries: 32,
            lq_entries: 32,
            sq_entries: 32,
            phys_regs: 176,
            max_br_tags: 16,
            redirect_penalty: 7,
            dispatch_latency: 3,
            hierarchy: HierarchyConfig::rtl_default(),
            fidelity: Fidelity::Rtl,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// The four Table 1 configurations, narrowest first.
    #[must_use]
    pub fn boom_sweep() -> [CoreConfig; 4] {
        [
            CoreConfig::small(),
            CoreConfig::medium(),
            CoreConfig::large(),
            CoreConfig::mega(),
        ]
    }

    /// The gem5-like configuration the original STT evaluation used (§8.6):
    /// a wide, idealized core whose baseline IPC lands near Mega's. Abstract
    /// fidelity also means a shallow (1-cycle dispatch) pipeline, the
    /// single-cycle L1 of §9.5, and unbounded broadcast.
    #[must_use]
    pub fn gem5_stt() -> Self {
        CoreConfig {
            name: "gem5-stt",
            width: 5,
            mem_ports: 2,
            rob_entries: 180,
            iq_entries: 40,
            lq_entries: 48,
            sq_entries: 40,
            phys_regs: 220,
            max_br_tags: 64,
            redirect_penalty: 5,
            dispatch_latency: 1,
            hierarchy: HierarchyConfig::abstract_default(),
            fidelity: Fidelity::Abstract,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// The gem5-like configuration the original NDA evaluation used (§8.6):
    /// baseline IPC between the Medium and Large BOOM points.
    #[must_use]
    pub fn gem5_nda() -> Self {
        CoreConfig {
            name: "gem5-nda",
            width: 3,
            mem_ports: 1,
            rob_entries: 96,
            iq_entries: 24,
            lq_entries: 24,
            sq_entries: 24,
            phys_regs: 144,
            max_br_tags: 48,
            redirect_penalty: 5,
            dispatch_latency: 1,
            hierarchy: HierarchyConfig::abstract_default(),
            fidelity: Fidelity::Abstract,
            scheduler: SchedulerKind::EventWheel,
            predictor: PredictorConfig::disabled(),
        }
    }

    /// A stable fingerprint of everything in the configuration that
    /// determines simulation *results* — every pipeline resource, latency
    /// and the full memory-hierarchy geometry, plus [`SIM_RESULTS_REVISION`]
    /// — so a persisted result store (`sb-experiments`' stats cache) keyed
    /// by it can never serve statistics produced under different
    /// parameters or by an older simulator.
    ///
    /// [`CoreConfig::scheduler`] is deliberately *excluded*: both
    /// schedulers produce bit-identical `SimStats` (proven by the
    /// golden-stats differential suite), so memoized results are valid
    /// across them by construction.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(0x100_0000_01b3);
        let mut h = self
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| fold(h, u64::from(b)));
        h = fold(h, SIM_RESULTS_REVISION);
        for v in [
            self.width as u64,
            self.mem_ports as u64,
            self.rob_entries as u64,
            self.iq_entries as u64,
            self.lq_entries as u64,
            self.sq_entries as u64,
            self.phys_regs as u64,
            self.max_br_tags as u64,
            u64::from(self.redirect_penalty),
            u64::from(self.dispatch_latency),
            match self.fidelity {
                Fidelity::Rtl => 1,
                Fidelity::Abstract => 2,
            },
            u64::from(self.predictor.enabled),
            self.predictor.pht_entries as u64,
            self.predictor.btb_entries as u64,
            u64::from(self.predictor.ghr_bits),
        ] {
            h = fold(h, v);
        }
        for cache in [&self.hierarchy.l1d, &self.hierarchy.l2] {
            h = fold(h, cache.sets as u64);
            h = fold(h, cache.ways as u64);
            h = fold(h, cache.line_bytes as u64);
            h = fold(h, u64::from(cache.latency));
        }
        h = fold(h, u64::from(self.hierarchy.dram_latency));
        h = fold(h, self.hierarchy.l1_prefetch_degree as u64);
        h = fold(h, self.hierarchy.l2_prefetch_degree as u64);
        h
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any resource is zero, or there are too few physical
    /// registers to rename a full ROB of destinations.
    pub fn validate(&self) {
        assert!(self.width > 0, "width must be positive");
        assert!(self.mem_ports > 0, "need at least one memory port");
        assert!(self.rob_entries >= self.width, "ROB must fit one group");
        assert!(self.iq_entries > 0 && self.lq_entries > 0 && self.sq_entries > 0);
        assert!(
            self.phys_regs >= sb_isa::NUM_ARCH_REGS + self.width,
            "physical registers must cover architectural state plus rename headroom"
        );
        assert!(self.max_br_tags > 0, "need at least one branch tag");
        if self.predictor.enabled {
            assert!(
                self.predictor.pht_entries.is_power_of_two()
                    && self.predictor.btb_entries.is_power_of_two(),
                "predictor table sizes must be powers of two"
            );
            assert!(
                self.predictor.ghr_bits <= 32,
                "GHR wider than 32 bits is unsupported"
            );
        }
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}-wide, {} mem ports, {} ROB, {})",
            self.name, self.width, self.mem_ports, self.rob_entries, self.fidelity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_key_characteristics() {
        let [s, m, l, g] = CoreConfig::boom_sweep();
        assert_eq!((s.width, s.mem_ports, s.rob_entries), (1, 1, 32));
        assert_eq!((m.width, m.mem_ports, m.rob_entries), (2, 1, 64));
        assert_eq!((l.width, l.mem_ports, l.rob_entries), (3, 1, 96));
        assert_eq!((g.width, g.mem_ports, g.rob_entries), (4, 2, 128));
    }

    #[test]
    fn all_presets_validate() {
        for c in CoreConfig::boom_sweep() {
            c.validate();
        }
        CoreConfig::gem5_stt().validate();
        CoreConfig::gem5_nda().validate();
    }

    #[test]
    fn gem5_configs_are_abstract_fidelity() {
        assert_eq!(CoreConfig::gem5_stt().fidelity, Fidelity::Abstract);
        assert_eq!(CoreConfig::gem5_nda().fidelity, Fidelity::Abstract);
        assert_eq!(CoreConfig::gem5_stt().hierarchy.l1d.latency, 1);
        assert_eq!(CoreConfig::mega().hierarchy.l1d.latency, 4);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let mut c = CoreConfig::small();
        c.width = 0;
        c.validate();
    }

    #[test]
    fn fingerprint_covers_every_result_determining_field() {
        let base = CoreConfig::mega().fingerprint();
        let mutations: Vec<CoreConfig> = vec![
            {
                let mut c = CoreConfig::mega();
                c.width = 5;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.rob_entries = 256;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.redirect_penalty += 1;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.hierarchy.dram_latency += 1;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.hierarchy.l1d.latency += 1;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.hierarchy.l2_prefetch_degree += 1;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.fidelity = Fidelity::Abstract;
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.predictor = PredictorConfig::enabled(64, 16, 0);
                c
            },
            {
                let mut c = CoreConfig::mega();
                c.predictor = PredictorConfig::enabled(64, 16, 8);
                c
            },
        ];
        for m in &mutations {
            assert_ne!(
                m.fingerprint(),
                base,
                "a result-determining change must move the fingerprint"
            );
        }
        // Distinct presets never collide with each other either.
        let fps: Vec<u64> = CoreConfig::boom_sweep()
            .iter()
            .map(CoreConfig::fingerprint)
            .collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fingerprint_ignores_the_scheduler_kind() {
        // Both schedulers produce bit-identical SimStats (golden-stats
        // suite), so memoized results are shared across them on purpose.
        let mut c = CoreConfig::mega();
        c.scheduler = SchedulerKind::Reference;
        assert_eq!(c.fingerprint(), CoreConfig::mega().fingerprint());
    }

    #[test]
    fn every_preset_ships_with_the_predictor_off() {
        for c in CoreConfig::boom_sweep() {
            assert!(!c.predictor.enabled);
        }
        assert!(!CoreConfig::gem5_stt().predictor.enabled);
        assert!(!CoreConfig::gem5_nda().predictor.enabled);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn enabled_predictor_rejects_non_power_of_two_tables() {
        let mut c = CoreConfig::mega();
        c.predictor = PredictorConfig::enabled(48, 16, 0);
        c.validate();
    }

    #[test]
    fn disabled_predictor_geometry_is_not_validated() {
        let mut c = CoreConfig::mega();
        c.predictor.pht_entries = 48; // harmless while disabled
        c.validate();
    }

    #[test]
    fn display_mentions_name_and_width() {
        let s = CoreConfig::mega().to_string();
        assert!(s.contains("mega") && s.contains("4-wide"));
    }
}
