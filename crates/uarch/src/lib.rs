//! BOOM-like cycle-level out-of-order core simulator with secure-speculation
//! scheme hooks — the evaluation substrate of the ShadowBinding reproduction.
//!
//! The simulator models the pipeline the paper implements in RTL on the
//! RISC-V BOOM (§7): trace-driven fetch with misprediction stalls and
//! explicit wrong-path injection, register renaming with branch tags, a
//! reorder buffer, age-ordered wakeup/select with speculative load-hit
//! scheduling and replay, a load-store unit with store-to-load forwarding
//! and memory-dependence speculation, a two-level cache hierarchy with
//! stride prefetchers, and in-order commit.
//!
//! The secure schemes (STT-Rename, STT-Issue, NDA — see `sb-core`) plug
//! into rename, issue, and writeback exactly where §4 and §5 of the paper
//! place them.
//!
//! # Example
//!
//! ```
//! use sb_isa::{ArchReg, TraceBuilder};
//! use sb_core::Scheme;
//! use sb_uarch::{Core, CoreConfig};
//!
//! let mut b = TraceBuilder::new("demo");
//! let x1 = ArchReg::int(1);
//! b.load(x1, ArchReg::int(2), 0x1000, 8);
//! b.alu(ArchReg::int(3), Some(x1), None);
//! let mut core = Core::with_scheme(CoreConfig::mega(), Scheme::SttIssue, b.build());
//! let stats = core.run_to_completion(10_000);
//! assert_eq!(stats.committed.get(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod cancel;
mod config;
mod core;
mod frontend;
mod inst;
mod memdep;
mod predictor;
mod rename;
mod rob;
mod sched;

pub use crate::core::Core;
pub use cancel::{CancelToken, CANCEL_POLL_CYCLES};
pub use config::{CoreConfig, Fidelity, PredictorConfig, SchedulerKind, SIM_RESULTS_REVISION};
pub use frontend::{Fetched, Frontend};
pub use inst::{ColdInst, HotInst, Phase};
pub use memdep::MemDepPredictor;
pub use predictor::{PredEvents, Prediction, Predictor};
pub use rename::{FreeList, Rat};
pub use rob::{RobArena, RobHandle};
