//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that a job runner hands
//! to a [`crate::Core`] before calling [`crate::Core::run`]. The core
//! polls it at cycle-batch granularity ([`CANCEL_POLL_CYCLES`]) — often
//! enough that a deadline or an explicit cancel stops a runaway
//! simulation within milliseconds, rarely enough that the poll (one
//! relaxed atomic load, plus one clock read when a deadline is armed)
//! costs nothing measurable (guarded by the `runner` section of
//! `BENCH_core.json`).
//!
//! Tokens form a chain: a child created with [`CancelToken::child`]
//! observes its parent's cancellation in addition to its own flag and
//! deadline. Job runners use this to combine a *global run budget* (the
//! parent, covering the whole batch) with *per-job soft deadlines* (one
//! child per job): cancelling the parent stops every job, while a child's
//! deadline stops only its own simulation. After an interrupted run,
//! [`CancelToken::deadline_exceeded`] distinguishes "this job blew its
//! own deadline" from "the whole run was cancelled" so failures classify
//! correctly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many simulated cycles the core advances between cancellation
/// polls. Small enough that even a slow (reference-scheduler, memory-
/// bound) simulation polls many times per second of wall clock; large
/// enough that the poll never shows up in profiles.
pub const CANCEL_POLL_CYCLES: u64 = 4096;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Soft deadline: the token reads as cancelled once `Instant::now()`
    /// passes it. Checked only at poll granularity — "soft" by design.
    deadline: Option<Instant>,
    /// Parent in the cancellation chain (a batch-wide budget token).
    parent: Option<CancelToken>,
}

/// A cloneable cooperative-cancellation handle (see module docs).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token that only cancels when [`CancelToken::cancel`] is
    /// called.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally reads as cancelled once `deadline`
    /// passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(deadline),
                ..Inner::default()
            }),
        }
    }

    /// A token cancelled `budget` from now (convenience over
    /// [`CancelToken::with_deadline`]).
    #[must_use]
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// A child token: cancelled when `self` is, when its own flag is set,
    /// or (if `deadline` is given) when the deadline passes. Cancelling
    /// the child never affects the parent.
    #[must_use]
    pub fn child(&self, deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline,
                parent: Some(self.clone()),
                ..Inner::default()
            }),
        }
    }

    /// Requests cancellation: every holder of this token (and of its
    /// children) observes it at their next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether this token's *own* deadline has passed (ignores the flag
    /// and the parent chain) — the classifier for "job overran its soft
    /// deadline" as opposed to "the whole run was cancelled".
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// Whether cancellation has been requested, here or anywhere up the
    /// parent chain, or any deadline on the chain has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) || self.deadline_exceeded() {
            return true;
        }
        self.inner
            .parent
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_until_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_exceeded(), "no deadline was armed");
    }

    #[test]
    fn past_deadline_reads_as_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
        let far = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(
            !child.deadline_exceeded(),
            "parent cancellation is not a deadline overrun"
        );

        let parent = CancelToken::new();
        let child = parent.child(None);
        child.cancel();
        assert!(!parent.is_cancelled(), "cancellation never flows upward");
    }

    #[test]
    fn child_deadline_is_its_own() {
        let parent = CancelToken::new();
        let child = parent.child(Some(Instant::now() - Duration::from_millis(1)));
        assert!(child.is_cancelled());
        assert!(child.deadline_exceeded());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }
}
