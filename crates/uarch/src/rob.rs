//! The reorder buffer as a fixed-capacity slot arena.
//!
//! The former ROB was a `VecDeque<Inst>` of owned ~200-byte records:
//! dispatch moved a whole `Inst` into the deque, commit moved it back out,
//! and every positional access paid the deque's two-slice arithmetic. The
//! arena removes all of that:
//!
//! * Entries live in two slot-parallel slabs — the hot scheduling records
//!   ([`HotInst`]) and the cold sidecars ([`ColdInst`]) — sized to the next
//!   power of two above the configured ROB capacity. A slot is
//!   `arrival & mask`; because the live window of arrival indexes is at
//!   most `capacity` wide, live slots never alias.
//! * Dispatch constructs entries in place; commit and squash just move the
//!   window bounds. Nothing is ever copied after construction.
//! * The wakeup/select hot loop indexes only the hot slab, fitting twice
//!   as many entries per cache line as the unified struct did.
//!
//! Arrival indexes count ROB pushes, but squashes *recycle* them: popping
//! the tail and dispatching a replacement reuses the same arrival (and the
//! same slot) for a different instruction. Every slot therefore carries a
//! generation counter, bumped on each (re)allocation; a [`RobHandle`]
//! captures `(arrival, generation)` and [`RobArena::resolve`] returns the
//! live position only while both still match. Handles dangling from a
//! squash or a commit resolve to `None` instead of aliasing the slot's new
//! tenant — `arena_props.rs` drives random dispatch/commit/squash
//! interleavings against a shadow model to pin exactly that property.

use crate::inst::{ColdInst, HotInst};

/// A generation-checked reference to one arena slot.
///
/// `arrival` names the slot (modulo capacity) and its age; `gen` is the
/// slot's allocation count at handle creation. The handle is valid while
/// the same dispatch incarnation is live, and resolves to `None` once the
/// instruction commits, is squashed, or the slot hosts a newer tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobHandle {
    /// Arrival index: the count of ROB pushes when this entry was
    /// allocated (recycled by squashes, hence the generation check).
    pub arrival: u64,
    /// Slot generation at allocation time.
    pub gen: u32,
}

/// The reorder buffer: a power-of-two ring of in-place instruction slots
/// with generation-checked handles.
#[derive(Clone, Debug)]
pub struct RobArena {
    hot: Box<[HotInst]>,
    cold: Box<[ColdInst]>,
    /// Per-slot allocation count (bumped on every push into the slot).
    gens: Box<[u32]>,
    /// Arrival index of the oldest live entry.
    head: u64,
    /// Arrival index one past the youngest live entry.
    tail: u64,
    /// Slot mask (`capacity - 1`).
    mask: u64,
    /// Maximum live entries (the *configured* ROB size; the slab may be
    /// larger after rounding up to a power of two).
    capacity: usize,
}

impl RobArena {
    /// An empty arena for a ROB of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        let slots = capacity.next_power_of_two();
        let filler_op = sb_isa::MicroOp::nop();
        let hot = vec![HotInst::new(sb_isa::Seq::ZERO, filler_op, false); slots];
        let cold = vec![ColdInst::new(filler_op, None); slots];
        RobArena {
            hot: hot.into_boxed_slice(),
            cold: cold.into_boxed_slice(),
            gens: vec![0; slots].into_boxed_slice(),
            head: 0,
            tail: 0,
            mask: (slots - 1) as u64,
            capacity,
        }
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether no entry is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Arrival index of the oldest live entry (the position-0 base: the
    /// entry at position `i` has arrival `head_arrival() + i`).
    #[must_use]
    pub fn head_arrival(&self) -> u64 {
        self.head
    }

    #[inline]
    fn slot_of(&self, arrival: u64) -> usize {
        (arrival & self.mask) as usize
    }

    #[inline]
    fn slot_at(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len(), "ROB position {idx} out of bounds");
        self.slot_of(self.head + idx as u64)
    }

    // The accessors below re-derive the slab mask from the slab's own
    // length (`len - 1 == self.mask` by construction) so the compiler can
    // prove `slot & (len - 1) < len` and elide the bounds check — these
    // sit under every per-cycle loop of the core.

    /// Hot record at live position `idx` (0 = oldest).
    #[inline]
    #[must_use]
    pub fn hot(&self, idx: usize) -> &HotInst {
        let slot = self.slot_at(idx) & (self.hot.len() - 1);
        &self.hot[slot]
    }

    /// Mutable hot record at live position `idx`.
    #[inline]
    pub fn hot_mut(&mut self, idx: usize) -> &mut HotInst {
        let slot = self.slot_at(idx) & (self.hot.len() - 1);
        &mut self.hot[slot]
    }

    /// Cold sidecar at live position `idx`.
    #[inline]
    #[must_use]
    pub fn cold(&self, idx: usize) -> &ColdInst {
        let slot = self.slot_at(idx) & (self.cold.len() - 1);
        &self.cold[slot]
    }

    /// Mutable cold sidecar at live position `idx`.
    #[inline]
    pub fn cold_mut(&mut self, idx: usize) -> &mut ColdInst {
        let slot = self.slot_at(idx) & (self.cold.len() - 1);
        &mut self.cold[slot]
    }

    /// Oldest live hot record, if any.
    #[inline]
    #[must_use]
    pub fn front(&self) -> Option<&HotInst> {
        (!self.is_empty()).then(|| self.hot(0))
    }

    /// Youngest live hot record, if any.
    #[inline]
    #[must_use]
    pub fn back(&self) -> Option<&HotInst> {
        (!self.is_empty()).then(|| self.hot(self.len() - 1))
    }

    /// Allocates the next slot in age order, writing `hot` and `cold` in
    /// place, and returns the generation-checked handle.
    ///
    /// # Panics
    ///
    /// Panics if the arena is at capacity (dispatch checks occupancy
    /// before renaming).
    pub fn push(&mut self, hot: HotInst, cold: ColdInst) -> RobHandle {
        let (handle, hot_slot, cold_slot) = self.alloc();
        *hot_slot = hot;
        *cold_slot = cold;
        handle
    }

    /// Allocates the next slot in age order and hands out the slot's hot
    /// and cold records for in-place construction (their previous
    /// tenant's state is still there — overwrite everything). The
    /// dispatch stage uses this to build entries directly in the slab.
    ///
    /// # Panics
    ///
    /// Panics if the arena is at capacity (dispatch checks occupancy
    /// before renaming).
    pub fn alloc(&mut self) -> (RobHandle, &mut HotInst, &mut ColdInst) {
        assert!(self.len() < self.capacity, "ROB arena overflow");
        let arrival = self.tail;
        let slot = self.slot_of(arrival);
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.tail += 1;
        let handle = RobHandle {
            arrival,
            gen: self.gens[slot],
        };
        (handle, &mut self.hot[slot], &mut self.cold[slot])
    }

    /// Retires the oldest entry: the slot's contents stay in place (read
    /// whatever is needed *before* calling this) but every handle to it
    /// dies with the window move.
    ///
    /// # Panics
    ///
    /// Panics if the arena is empty.
    pub fn pop_front(&mut self) {
        assert!(!self.is_empty(), "pop_front on empty ROB");
        self.head += 1;
    }

    /// Squashes the youngest entry; its arrival index (and slot) will be
    /// recycled by the next push, at a new generation.
    ///
    /// # Panics
    ///
    /// Panics if the arena is empty.
    pub fn pop_back(&mut self) {
        assert!(!self.is_empty(), "pop_back on empty ROB");
        self.tail -= 1;
    }

    /// The handle of the live entry at position `idx`.
    #[inline]
    #[must_use]
    pub fn handle(&self, idx: usize) -> RobHandle {
        let slot = self.slot_at(idx) & (self.gens.len() - 1);
        RobHandle {
            arrival: self.head + idx as u64,
            gen: self.gens[slot],
        }
    }

    /// Resolves a handle to the live position of the entry it was created
    /// for, or `None` if that incarnation has committed, been squashed, or
    /// had its slot reused. O(1).
    #[inline]
    #[must_use]
    pub fn resolve(&self, h: RobHandle) -> Option<usize> {
        if h.arrival < self.head || h.arrival >= self.tail {
            return None;
        }
        let slot = self.slot_of(h.arrival) & (self.gens.len() - 1);
        (self.gens[slot] == h.gen).then(|| (h.arrival - self.head) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_isa::{ArchReg, MicroOp, Seq};

    fn entry(seq: u64) -> (HotInst, ColdInst) {
        let op = MicroOp::alu(ArchReg::int(1), None, None);
        (
            HotInst::new(Seq::new(seq), op, false),
            ColdInst::new(op, None),
        )
    }

    #[test]
    fn push_pop_window_moves() {
        let mut a = RobArena::new(4);
        assert!(a.is_empty());
        let (h1, c1) = entry(1);
        let (h2, c2) = entry(2);
        a.push(h1, c1);
        a.push(h2, c2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.front().unwrap().seq, Seq::new(1));
        assert_eq!(a.back().unwrap().seq, Seq::new(2));
        assert_eq!(a.hot(1).seq, Seq::new(2));
        a.pop_front();
        assert_eq!(a.len(), 1);
        assert_eq!(a.head_arrival(), 1);
        assert_eq!(a.front().unwrap().seq, Seq::new(2));
    }

    #[test]
    fn handles_die_on_commit_and_squash() {
        let mut a = RobArena::new(4);
        let (h1, c1) = entry(1);
        let (h2, c2) = entry(2);
        let first = a.push(h1, c1);
        let second = a.push(h2, c2);
        assert_eq!(a.resolve(first), Some(0));
        assert_eq!(a.resolve(second), Some(1));
        a.pop_front(); // commit seq 1
        assert_eq!(a.resolve(first), None);
        assert_eq!(a.resolve(second), Some(0));
        a.pop_back(); // squash seq 2
        assert_eq!(a.resolve(second), None);
    }

    #[test]
    fn recycled_arrival_gets_a_new_generation() {
        let mut a = RobArena::new(4);
        let (h1, c1) = entry(1);
        a.push(h1, c1);
        let (h2, c2) = entry(2);
        let stale = a.push(h2, c2);
        a.pop_back(); // squash seq 2
        let (h3, c3) = entry(3);
        let fresh = a.push(h3, c3); // recycles arrival 1
        assert_eq!(stale.arrival, fresh.arrival);
        assert_ne!(stale.gen, fresh.gen);
        assert_eq!(a.resolve(stale), None, "stale handle must not alias");
        assert_eq!(a.resolve(fresh), Some(1));
        assert_eq!(a.hot(1).seq, Seq::new(3));
    }

    #[test]
    fn ring_wraps_without_aliasing() {
        let mut a = RobArena::new(3); // slab rounds up to 4 slots
        for seq in 1..=20u64 {
            let (h, c) = entry(seq);
            let handle = a.push(h, c);
            assert_eq!(a.resolve(handle), Some(a.len() - 1));
            if a.len() == 3 {
                assert_eq!(a.front().unwrap().seq, Seq::new(seq - 2));
                a.pop_front();
            }
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.front().unwrap().seq, Seq::new(19));
        assert_eq!(a.back().unwrap().seq, Seq::new(20));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_rejected() {
        let mut a = RobArena::new(2);
        for seq in 1..=3 {
            let (h, c) = entry(seq);
            a.push(h, c);
        }
    }

    #[test]
    fn in_place_mutation_sticks() {
        let mut a = RobArena::new(4);
        let (h1, c1) = entry(1);
        a.push(h1, c1);
        a.hot_mut(0).set_executed(true);
        *a.cold_mut(0) = ColdInst::new(a.cold(0).op, Some(7));
        assert!(a.hot(0).executed());
        assert_eq!(a.cold(0).trace_idx(), Some(7));
    }
}
