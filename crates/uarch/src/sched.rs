//! Event-wheel scheduling substrate for the out-of-order core.
//!
//! The reference scheduler re-walks the whole ROB every cycle; everything
//! in this module exists to make per-cycle work proportional to *events*
//! instead:
//!
//! * [`Calendar`] — a bucketed calendar queue (ring of reusable `Vec`
//!   buckets keyed by `cycle & mask`, with a `BTreeMap` overflow for
//!   beyond-horizon entries) replacing the `BTreeMap<u64, Vec<_>>` event
//!   queue. Draining a cycle is O(items due); pushing is O(1).
//! * [`WastedRing`] — the same idea for the replay-wasted issue slots.
//! * [`Part`] — the schedulable unit: whole micro-ops, or the address /
//!   data halves of a unified store (which issue independently, §9.2).
//! * [`SchedState`] — the wheel's bookkeeping: the age-ordered ready set,
//!   per-physical-register waiter lists, the taint-masked parking lot
//!   (keyed by youngest root of taint), per-store waiter lists for loads
//!   blocked in the LSU, LQ/SQ arrival indexes, and per-preg dependent
//!   counts.
//!
//! Instructions are identified by their *arrival index*: a monotone count
//! of ROB pushes. Because the ROB only ever pushes at the back and pops at
//! either end, the live window of arrival indexes is contiguous, so
//! `arrival - head_arrival` recovers a ROB position in O(1). Squashes can
//! recycle arrival indexes for different instructions, so every reference
//! carries the slot's allocation generation as a validity check (see
//! [`crate::rob::RobHandle`]).

use sb_isa::Seq;
use std::collections::BTreeMap;

/// Number of calendar buckets. Must exceed the longest schedulable latency
/// (worst demand access: L1 + L2 + DRAM ≈ 100 cycles on the RTL presets);
/// anything further out lands in the overflow map.
pub(crate) const HORIZON: usize = 256;

/// The schedulable unit of one instruction.
///
/// Ordering matters: the reference scheduler visits a store entry once per
/// cycle, attempting the address part before the data part, so the ready
/// set orders `StoreAddr` before `StoreData` at equal age.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Part {
    /// A load, branch, or single-issue compute op.
    Whole,
    /// The address-generation half of a unified store micro-op.
    StoreAddr,
    /// The data half of a unified store micro-op.
    StoreData,
}

/// A validated reference to one schedulable part of an in-flight
/// instruction: `(arrival index, part, slot generation)`. The generation
/// detects arrival slots recycled by a squash.
pub(crate) type PartRef = (u64, Part, u32);

/// A bucketed calendar queue: O(1) push, O(due) drain per cycle. A
/// word-level occupancy bitmap mirrors the buckets so "when is the next
/// scheduled cycle?" is a four-word scan.
#[derive(Clone, Debug)]
pub(crate) struct Calendar<T> {
    buckets: Vec<Vec<T>>,
    /// Bit `at & mask` set iff the corresponding bucket is non-empty.
    occupied: [u64; HORIZON / 64],
    overflow: BTreeMap<u64, Vec<T>>,
    mask: u64,
    /// Scheduled items across all buckets and the overflow: the per-cycle
    /// drain early-outs on an empty calendar with one compare.
    len: usize,
}

impl<T> Calendar<T> {
    /// A calendar with `HORIZON` ring buckets.
    pub(crate) fn new() -> Self {
        debug_assert!(HORIZON.is_power_of_two());
        Calendar {
            buckets: std::iter::repeat_with(Vec::new).take(HORIZON).collect(),
            occupied: [0; HORIZON / 64],
            overflow: BTreeMap::new(),
            mask: (HORIZON - 1) as u64,
            len: 0,
        }
    }

    /// Whether nothing is scheduled at all. O(1).
    #[inline]
    pub(crate) fn is_empty_fast(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` for cycle `at` (`at >= now`; the bucket for a cycle
    /// is only reusable because every cycle is drained exactly once).
    pub(crate) fn push(&mut self, now: u64, at: u64, item: T) {
        debug_assert!(at >= now, "cannot schedule into the past");
        self.len += 1;
        if at - now < HORIZON as u64 {
            let slot = (at & self.mask) as usize;
            self.buckets[slot].push(item);
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.entry(at).or_default().push(item);
        }
    }

    /// Drains everything due at `now` into `out`, preserving global
    /// insertion order: overflow entries were necessarily pushed at least a
    /// horizon earlier than ring entries for the same cycle, so they come
    /// first.
    pub(crate) fn drain_into(&mut self, now: u64, out: &mut Vec<T>) {
        if self.len == 0 {
            return;
        }
        if !self.overflow.is_empty() {
            if let Some(mut v) = self.overflow.remove(&now) {
                self.len -= v.len();
                out.append(&mut v);
            }
        }
        let slot = (now & self.mask) as usize;
        let bucket = &mut self.buckets[slot];
        if !bucket.is_empty() {
            self.len -= bucket.len();
            if out.is_empty() {
                // The common case: hand the bucket over wholesale instead
                // of copying it (capacities migrate between the ring and
                // the caller's scratch buffer, which is fine — both are
                // recycled forever).
                std::mem::swap(out, bucket);
            } else {
                out.append(bucket);
            }
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
    }

    /// Whether nothing is scheduled anywhere (diagnostics).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.overflow.is_empty() && self.buckets.iter().all(Vec::is_empty)
    }

    /// The first cycle in `(now, now + HORIZON)` with something scheduled,
    /// if any — also considering overflow entries. Used to bound idle-cycle
    /// skips; `None` means nothing due within the horizon.
    pub(crate) fn next_occupied(&self, now: u64) -> Option<u64> {
        let mut ring_hit = None;
        let mut at = now + 1;
        let end = now + HORIZON as u64;
        while at < end {
            let slot = (at & self.mask) as usize;
            let bits = self.occupied[slot / 64] >> (slot % 64);
            if bits != 0 {
                let cand = at + u64::from(bits.trailing_zeros());
                // Bits later in the word may belong to cycles <= now (the
                // lap wraps inside a word); only accept in-range hits.
                if cand < end {
                    ring_hit = Some(cand);
                    break;
                }
            }
            at += u64::from(64 - (slot % 64) as u32);
        }
        let overflow_hit = self.overflow.range(now + 1..).next().map(|(&at, _)| at);
        match (ring_hit, overflow_hit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// An age-ordered queue of ROB arrival indexes (the LQ / SQ), stored as a
/// power-of-two ring addressed by *monotone position*: `push` returns the
/// entry's position, and positions never shift (commit advances `head`,
/// squash retreats `tail`). An instruction that records the queue's tail
/// position at dispatch can later slice "everything older/younger than
/// me" directly — no binary search over the queue.
#[derive(Clone, Debug)]
pub(crate) struct ArrivalRing {
    slots: Vec<u64>,
    mask: u64,
    /// Monotone position of the oldest live entry.
    head: u64,
    /// Monotone position one past the youngest live entry.
    tail: u64,
}

impl ArrivalRing {
    pub(crate) fn new(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(2);
        ArrivalRing {
            slots: vec![0; n],
            mask: (n - 1) as u64,
            head: 0,
            tail: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Monotone position of the oldest live entry.
    pub(crate) fn head(&self) -> u64 {
        self.head
    }

    /// Monotone position one past the youngest live entry.
    pub(crate) fn tail(&self) -> u64 {
        self.tail
    }

    /// The arrival index stored at monotone position `pos`.
    #[inline]
    pub(crate) fn get(&self, pos: u64) -> u64 {
        self.slots[((pos & self.mask) as usize) & (self.slots.len() - 1)]
    }

    pub(crate) fn push(&mut self, arrival: u64) {
        debug_assert!(self.len() < self.slots.len(), "arrival ring overflow");
        let slot = ((self.tail & self.mask) as usize) & (self.slots.len() - 1);
        self.slots[slot] = arrival;
        self.tail += 1;
    }

    /// The oldest live entry, if any.
    pub(crate) fn front(&self) -> Option<u64> {
        (self.head != self.tail).then(|| self.get(self.head))
    }

    /// The youngest live entry, if any.
    pub(crate) fn back(&self) -> Option<u64> {
        (self.head != self.tail).then(|| self.get(self.tail - 1))
    }

    pub(crate) fn pop_front(&mut self) {
        debug_assert!(self.head != self.tail, "pop_front on empty ring");
        self.head += 1;
    }

    pub(crate) fn pop_back(&mut self) {
        debug_assert!(self.head != self.tail, "pop_back on empty ring");
        self.tail -= 1;
    }
}

/// Replay-wasted issue slots per future cycle, as a ring.
#[derive(Clone, Debug)]
pub(crate) struct WastedRing {
    slots: Vec<usize>,
    mask: u64,
}

impl WastedRing {
    pub(crate) fn new() -> Self {
        WastedRing {
            slots: vec![0; HORIZON],
            mask: (HORIZON - 1) as u64,
        }
    }

    /// Adds `n` wasted slots at cycle `at`.
    pub(crate) fn add(&mut self, now: u64, at: u64, n: usize) {
        assert!(
            at >= now && at - now < HORIZON as u64,
            "wasted-slot horizon exceeded (at {at}, now {now})"
        );
        self.slots[(at & self.mask) as usize] += n;
    }

    /// Takes (and clears) the wasted slots charged to cycle `now`.
    pub(crate) fn take(&mut self, now: u64) -> usize {
        std::mem::take(&mut self.slots[(now & self.mask) as usize])
    }
}

/// A wake-up processed at the start of a cycle's issue stage.
///
/// Only register availability needs an explicit wake: parts whose operands
/// are ready but which are still below the minimum issue age sit directly
/// in the ready ring, where the age-ordered scan stops at the first
/// too-young entry (dispatch cycles are monotone in arrival order).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Wake {
    /// A physical register's value became available: re-examine everything
    /// on its waiter list.
    Preg(usize),
}

/// The age-ordered ready set, as a ring bitmap: two bits per ROB slot
/// (store-address/whole, then store-data), keyed by the *packed position*
/// `arrival * 2 + part_bit`, which is monotone in age and — because the
/// ring covers a full ROB's worth of slots — never aliases across live
/// instructions. Insert/remove are O(1); finding the next ready part is a
/// word scan (4 words for a 128-entry ROB).
///
/// Unlike the lazily-cleaned waiter containers, the ring is maintained
/// *exactly*: bits are set only for live, operand-ready parts (possibly
/// still below the minimum issue age) and cleared on issue, park, and
/// squash, so no generation validation is needed.
#[derive(Clone, Debug)]
pub(crate) struct ReadyRing {
    words: Vec<u64>,
    /// `window * 2 - 1`, where `window` is a power of two ≥ ROB entries.
    pos_mask: u64,
    /// Set bits, maintained on every insert/remove: `is_clear` is checked
    /// every cycle (idle-skip precondition and issue-loop exit), so it
    /// must not cost a word scan.
    count: usize,
    /// Lower bound on the smallest set position: no set bit exists below
    /// it. Lowered by inserts, raised by exhaustive scans and the
    /// per-cycle `begin_scan` — so the issue scan does not re-walk empty
    /// words below the oldest ready entry every cycle.
    floor: u64,
}

/// Packed age position of one schedulable part.
pub(crate) fn pack_pos(arrival: u64, part: Part) -> u64 {
    arrival * 2 + u64::from(part == Part::StoreData)
}

impl ReadyRing {
    pub(crate) fn new(rob_entries: usize) -> Self {
        let window = rob_entries.next_power_of_two().max(32);
        ReadyRing {
            words: vec![0; window * 2 / 64],
            pos_mask: (window as u64) * 2 - 1,
            count: 0,
            floor: 0,
        }
    }

    #[inline]
    fn locate(&self, pos: u64) -> (usize, u32) {
        let ring = pos & self.pos_mask;
        (
            ((ring / 64) as usize) & (self.words.len() - 1),
            (ring % 64) as u32,
        )
    }

    #[inline]
    pub(crate) fn insert(&mut self, pos: u64) {
        let (w, b) = self.locate(pos);
        self.count += usize::from(self.words[w] & (1 << b) == 0);
        self.words[w] |= 1 << b;
        self.floor = self.floor.min(pos);
    }

    #[inline]
    pub(crate) fn remove(&mut self, pos: u64) {
        let (w, b) = self.locate(pos);
        self.count -= usize::from(self.words[w] & (1 << b) != 0);
        self.words[w] &= !(1 << b);
    }

    #[inline]
    pub(crate) fn contains(&self, pos: u64) -> bool {
        let (w, b) = self.locate(pos);
        self.words[w] & (1 << b) != 0
    }

    /// Whether no part is ready at all (the idle-skip precondition and the
    /// issue loop's cheap exit). O(1).
    #[inline]
    pub(crate) fn is_clear(&self) -> bool {
        self.count == 0
    }

    /// Declares that no set bit exists below `base` (the ROB head) — true
    /// by the ring-exactness invariant; called once at the top of each
    /// issue scan so the floor recovers after commits advance the head.
    #[inline]
    pub(crate) fn begin_scan(&mut self, base: u64) {
        self.floor = self.floor.max(base);
    }

    /// Smallest set position in `[from, end)`, where the whole range is
    /// within one ring lap (guaranteed: live arrivals span at most the ROB).
    pub(crate) fn next_ready(&mut self, from: u64, end: u64) -> Option<u64> {
        // Words in `[from, floor)` are known clear; skip them. The floor
        // may only be raised when the scan started at or below it —
        // otherwise set bits deliberately left behind the caller's cursor
        // (memory-port rejections) would be skipped forever.
        let raise = from <= self.floor;
        let mut pos = from.max(self.floor);
        while pos < end {
            let (w, b) = self.locate(pos);
            let mut bits = self.words[w] >> b;
            // A word visited near the end of a wrapped scan can carry set
            // bits for positions at or past `end` — ring aliases of
            // positions *behind* the cursor (memory-port rejections leave
            // their bits in place mid-scan). Mask them off: without this,
            // a leftover bit re-surfaces one lap forward as a phantom
            // entry past the ROB tail.
            let span = end - pos;
            if span < u64::from(64 - b) {
                bits &= (1 << span) - 1;
            }
            if bits != 0 {
                let found = pos + u64::from(bits.trailing_zeros());
                debug_assert!(found < end, "stale ready bit past the ROB tail");
                if raise {
                    self.floor = found;
                }
                return Some(found);
            }
            pos += u64::from(64 - b);
        }
        if raise {
            self.floor = end;
        }
        None
    }

    /// Clears both part bits for every arrival in `[from, to)` (squash).
    pub(crate) fn clear_arrivals(&mut self, from: u64, to: u64) {
        for arrival in from..to {
            self.remove(pack_pos(arrival, Part::StoreAddr));
            self.remove(pack_pos(arrival, Part::StoreData));
        }
    }
}

/// The event-wheel scheduler's bookkeeping.
///
/// Invariant: every not-yet-issued part of a live instruction lives in
/// exactly one container — `ready`, one preg waiter list, `masked`, or one
/// store waiter list. Squashed instructions may leave stale references
/// behind; consumers validate the stored slot generation before acting.
#[derive(Clone, Debug)]
pub(crate) struct SchedState {
    /// Age-ordered issue candidates whose operands are ready and whose
    /// dispatch latency has elapsed.
    pub(crate) ready: ReadyRing,
    /// `preg index -> parts waiting on that register` (each part is
    /// registered on at most one register: its first unready source).
    pub(crate) preg_waiters: Vec<Vec<PartRef>>,
    /// Recycled drain buffer for `preg_waiters` (avoids reallocating a
    /// list on every wakeup).
    pub(crate) waiter_scratch: Vec<PartRef>,
    /// Taint-masked parts parked until the untaint broadcast passes their
    /// youngest root of taint: `(root seq value, arrival, part) -> slot
    /// generation`.
    pub(crate) masked: BTreeMap<(u64, u64, Part), u32>,
    /// Loads the LSU refused (older store with unknown address or pending
    /// data), keyed by the blocking store's arrival index.
    pub(crate) store_waiters: BTreeMap<u64, Vec<PartRef>>,
    /// Wake-up calendar, drained at the start of every issue stage.
    pub(crate) wakes: Calendar<Wake>,
    /// Scratch buffer for draining `wakes` without aliasing `self`.
    pub(crate) wake_scratch: Vec<Wake>,
}

impl SchedState {
    pub(crate) fn new(phys_regs: usize, rob_entries: usize) -> Self {
        SchedState {
            ready: ReadyRing::new(rob_entries),
            preg_waiters: vec![Vec::new(); phys_regs],
            waiter_scratch: Vec::new(),
            masked: BTreeMap::new(),
            store_waiters: BTreeMap::new(),
            wakes: Calendar::new(),
            wake_scratch: Vec::new(),
        }
    }

    /// Discards every reference to arrivals in `[first_arrival, end)` from
    /// the eagerly-cleaned containers (squash). Waiter lists, the masked
    /// map and pending wakes are cleaned lazily via generation validation.
    pub(crate) fn squash_from(&mut self, first_arrival: u64, end: u64) {
        self.ready.clear_arrivals(first_arrival, end);
        let _ = self.store_waiters.split_off(&first_arrival);
    }

    /// Pops every masked part whose root is now at or past the visibility
    /// point `safe`, appending them to `out` for revalidation.
    pub(crate) fn unpark_safe(&mut self, safe: Seq, out: &mut Vec<PartRef>) {
        while let Some((&(root, arrival, part), &gen)) = self.masked.first_key_value() {
            if root > safe.value() {
                break;
            }
            self.masked.remove(&(root, arrival, part));
            out.push((arrival, part, gen));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_roundtrip_preserves_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.push(0, 5, 1);
        c.push(0, 5, 2);
        c.push(3, 5, 3);
        let mut out = Vec::new();
        c.drain_into(4, &mut out);
        assert!(out.is_empty());
        c.drain_into(5, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(c.is_empty());
    }

    #[test]
    fn calendar_overflow_entries_come_back_first() {
        let far = HORIZON as u64 + 10;
        let mut c: Calendar<u32> = Calendar::new();
        c.push(0, far, 7); // beyond horizon at insertion: overflow
        c.push(far - 1, far, 8); // within horizon: ring bucket
        let mut out = Vec::new();
        c.drain_into(far, &mut out);
        assert_eq!(out, vec![7, 8], "older insertions drain first");
        assert!(c.is_empty());
    }

    #[test]
    fn calendar_buckets_are_reusable_across_laps() {
        let mut c: Calendar<u32> = Calendar::new();
        let mut out = Vec::new();
        for lap in 0u64..3 {
            let at = lap * HORIZON as u64 + 2;
            c.push(at - 1, at, lap as u32);
            c.drain_into(at, &mut out);
        }
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn wasted_ring_takes_and_clears() {
        let mut w = WastedRing::new();
        w.add(10, 14, 2);
        w.add(11, 14, 1);
        assert_eq!(w.take(13), 0);
        assert_eq!(w.take(14), 3);
        assert_eq!(w.take(14), 0, "take clears the bucket");
    }

    #[test]
    fn ready_ring_orders_by_age_then_store_part() {
        let mut r = ReadyRing::new(128);
        r.insert(pack_pos(7, Part::StoreData));
        r.insert(pack_pos(7, Part::StoreAddr));
        r.insert(pack_pos(6, Part::Whole));
        let end = pack_pos(130, Part::StoreAddr);
        let a = r.next_ready(0, end).unwrap();
        assert_eq!(a, pack_pos(6, Part::Whole));
        r.remove(a);
        let b = r.next_ready(a, end).unwrap();
        assert_eq!(b, pack_pos(7, Part::StoreAddr));
        let c = r.next_ready(b + 1, end).unwrap();
        assert_eq!(c, pack_pos(7, Part::StoreData));
    }

    #[test]
    fn ready_ring_wraps_without_aliasing() {
        let mut r = ReadyRing::new(32);
        // Live window far past the first lap of the ring.
        let base = 1000u64;
        r.insert(pack_pos(base + 3, Part::Whole));
        r.insert(pack_pos(base + 30, Part::StoreData));
        let end = pack_pos(base + 32, Part::StoreAddr);
        let first = r.next_ready(pack_pos(base, Part::StoreAddr), end).unwrap();
        assert_eq!(first, pack_pos(base + 3, Part::Whole));
        let second = r.next_ready(first + 1, end).unwrap();
        assert_eq!(second, pack_pos(base + 30, Part::StoreData));
        r.remove(first);
        r.remove(second);
        assert_eq!(r.next_ready(pack_pos(base, Part::StoreAddr), end), None);
    }

    #[test]
    fn leftover_bit_behind_the_cursor_does_not_alias_past_the_tail() {
        // window 32 -> a single 64-bit word with zero slack: the live range
        // [10, 74) occupies the whole word, wrapping its boundary.
        let mut r = ReadyRing::new(32);
        let base = 5u64;
        let end = pack_pos(base + 32, Part::StoreAddr); // 74
                                                        // A memory-port rejection left this bit set behind the cursor.
        r.insert(pack_pos(7, Part::StoreData)); // position 15
                                                // The scan resumes past it; the bit's ring alias (15 + 64 = 79)
                                                // lies beyond `end` and must not surface as a phantom entry past
                                                // the ROB tail when the wrapped word is rescanned from offset 0.
        assert_eq!(r.next_ready(20, end), None);
        // A real entry in the wrapped tail of the word is still found.
        r.insert(pack_pos(base + 30, Part::Whole)); // position 70
        assert_eq!(
            r.next_ready(20, end),
            Some(pack_pos(base + 30, Part::Whole))
        );
    }

    #[test]
    fn squash_from_trims_ready_and_store_waiters() {
        let mut s = SchedState::new(8, 32);
        s.ready.insert(pack_pos(3, Part::Whole));
        s.ready.insert(pack_pos(5, Part::Whole));
        s.store_waiters
            .entry(4)
            .or_default()
            .push((6, Part::Whole, 60));
        s.store_waiters
            .entry(2)
            .or_default()
            .push((3, Part::Whole, 30));
        s.squash_from(4, 8);
        assert!(s.ready.contains(pack_pos(3, Part::Whole)));
        assert!(!s.ready.contains(pack_pos(5, Part::Whole)));
        assert!(s.store_waiters.contains_key(&2));
        assert!(!s.store_waiters.contains_key(&4));
    }

    #[test]
    fn unpark_safe_pops_in_root_order_up_to_the_frontier() {
        let mut s = SchedState::new(4, 32);
        s.masked.insert((5, 10, Part::Whole), 100);
        s.masked.insert((7, 11, Part::StoreAddr), 110);
        s.masked.insert((9, 12, Part::Whole), 120);
        let mut out = Vec::new();
        s.unpark_safe(Seq::new(7), &mut out);
        assert_eq!(
            out,
            vec![(10, Part::Whole, 100), (11, Part::StoreAddr, 110)]
        );
        assert_eq!(s.masked.len(), 1);
    }
}
