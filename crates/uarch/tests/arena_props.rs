//! Property tests for the ROB arena (via the offline proptest shim).
//!
//! The arena recycles both slots and arrival indexes: a squash pops the
//! tail, and the next dispatch reuses the same arrival (and the same
//! backing slot) for a *different* instruction. The safety of every lazily
//! cleaned scheduler container (waiter lists, the masked map, pending
//! events) rests on one property: a handle taken before such a recycle
//! must never resolve to the slot's new tenant. These tests drive random
//! dispatch / commit / squash interleavings against a naive shadow model
//! to pin exactly that.

use proptest::prelude::*;
use sb_isa::{ArchReg, MicroOp, Seq};
use sb_uarch::{ColdInst, HotInst, RobArena, RobHandle};

const CAPACITY: usize = 24;

fn entry(seq: u64) -> (HotInst, ColdInst) {
    let op = MicroOp::alu(ArchReg::int(1), None, None);
    (
        HotInst::new(Seq::new(seq), op, false),
        ColdInst::new(op, None),
    )
}

/// One step of the random walk: dispatch one op, commit the head, or
/// squash the tail.
#[derive(Clone, Copy, Debug)]
enum Step {
    Push,
    Commit,
    Squash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Weight pushes so the arena actually fills and wraps.
    (0usize..4).prop_map(|n| match n {
        0 | 1 => Step::Push,
        2 => Step::Commit,
        _ => Step::Squash,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A stale generation handle never resolves once its instruction has
    /// committed or been squashed — even after the arrival index and slot
    /// have been recycled by later dispatches — while handles to live
    /// instructions always resolve to the position holding their own
    /// sequence number.
    #[test]
    fn stale_handles_never_alias_reused_slots(
        steps in proptest::collection::vec(step_strategy(), 1..400),
    ) {
        let mut arena = RobArena::new(CAPACITY);
        // Shadow model: the live window as a plain Vec of (handle, seq),
        // plus every handle ever retired from it.
        let mut live: Vec<(RobHandle, u64)> = Vec::new();
        let mut dead: Vec<RobHandle> = Vec::new();
        let mut next_seq = 1u64;

        for step in steps {
            match step {
                Step::Push => {
                    if live.len() == CAPACITY {
                        continue;
                    }
                    let (h, c) = entry(next_seq);
                    let handle = arena.push(h, c);
                    live.push((handle, next_seq));
                    next_seq += 1;
                }
                Step::Commit => {
                    if live.is_empty() {
                        continue;
                    }
                    arena.pop_front();
                    dead.push(live.remove(0).0);
                }
                Step::Squash => {
                    if live.is_empty() {
                        continue;
                    }
                    arena.pop_back();
                    dead.push(live.pop().expect("nonempty").0);
                }
            }

            prop_assert_eq!(arena.len(), live.len());
            for (pos, &(handle, seq)) in live.iter().enumerate() {
                prop_assert_eq!(arena.resolve(handle), Some(pos));
                prop_assert_eq!(arena.hot(pos).seq, Seq::new(seq));
            }
            for &handle in &dead {
                // The heart of the property: every dead handle stays dead,
                // no matter how many newer tenants its arrival/slot saw.
                prop_assert_eq!(arena.resolve(handle), None);
            }
        }
    }

    /// `handle()` round-trips through `resolve()` for every live position,
    /// at arbitrary points of a random walk (including after ring wraps).
    #[test]
    fn handle_resolve_round_trips(
        steps in proptest::collection::vec(step_strategy(), 1..300),
    ) {
        let mut arena = RobArena::new(5); // rounds up to 8 slots: wraps often
        let mut len = 0usize;
        let mut next_seq = 1u64;
        for step in steps {
            match step {
                Step::Push if len < 5 => {
                    let (h, c) = entry(next_seq);
                    arena.push(h, c);
                    next_seq += 1;
                    len += 1;
                }
                Step::Commit if len > 0 => {
                    arena.pop_front();
                    len -= 1;
                }
                Step::Squash if len > 0 => {
                    arena.pop_back();
                    len -= 1;
                }
                _ => {}
            }
            for pos in 0..len {
                prop_assert_eq!(arena.resolve(arena.handle(pos)), Some(pos));
            }
        }
    }
}

/// The hot record must stay within one cache line: the wakeup/select and
/// LSU-search loops budget exactly that (see `sb_uarch::HotInst`'s module
/// docs). A compile-time assertion in `inst.rs` enforces the same bound;
/// this test exists to fail with a readable message.
#[test]
fn hot_record_fits_one_cache_line() {
    let size = std::mem::size_of::<HotInst>();
    assert!(
        size <= 64,
        "HotInst grew to {size} bytes (> 64): the hot scheduling record \
         must fit one cache line — move the new field to ColdInst instead"
    );
}
