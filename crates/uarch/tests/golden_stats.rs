//! Golden-stats differential tests: the event-wheel scheduler must be
//! cycle-for-cycle indistinguishable from the reference full-scan
//! scheduler. Every counter in [`sb_stats::SimStats`] — committed ops,
//! cycles, the full stall breakdown, scheme counters, cache counters — has
//! to match exactly, for every scheme, on both an RTL and an abstract
//! configuration, across several workload profiles and seeds.

use sb_core::{Scheme, SchemeConfig, ThreatModel};
use sb_stats::SimStats;
use sb_uarch::{Core, CoreConfig, PredictorConfig, SchedulerKind};
use sb_workloads::{
    attack_battery, generate, m_shadow_kernel, mshr_contention_kernel, prime_probe_kernel,
    spec2017_profiles, spectre_v1_kernel, ssb_kernel, TraceStore,
};
use std::collections::BTreeSet;

const MAX_CYCLES: u64 = 10_000_000;

fn run(config: &CoreConfig, scheme_cfg: SchemeConfig, trace: sb_isa::Trace) -> SimStats {
    let mut core = Core::new(config.clone(), scheme_cfg, trace);
    core.run_to_completion(MAX_CYCLES);
    core.stats().clone()
}

fn with_scheduler(config: &CoreConfig, kind: SchedulerKind) -> CoreConfig {
    let mut c = config.clone();
    c.scheduler = kind;
    c
}

/// Runs one (config, scheme-config, trace) point under both schedulers and
/// asserts every statistic matches.
fn assert_golden(config: &CoreConfig, scheme_cfg: SchemeConfig, trace: &sb_isa::Trace, tag: &str) {
    let reference = run(
        &with_scheduler(config, SchedulerKind::Reference),
        scheme_cfg,
        trace.clone(),
    );
    let wheel = run(
        &with_scheduler(config, SchedulerKind::EventWheel),
        scheme_cfg,
        trace.clone(),
    );
    assert_eq!(
        reference.committed.get(),
        wheel.committed.get(),
        "{tag}: committed diverged"
    );
    assert_eq!(
        reference.cycles.get(),
        wheel.cycles.get(),
        "{tag}: cycles diverged"
    );
    assert_eq!(
        reference.stalls, wheel.stalls,
        "{tag}: stall breakdown diverged"
    );
    assert_eq!(reference, wheel, "{tag}: full statistics diverged");
}

fn scheme_variants(config: &CoreConfig) -> Vec<(String, SchemeConfig)> {
    let mut out = Vec::new();
    for scheme in Scheme::all() {
        let cfg = match config.fidelity {
            sb_uarch::Fidelity::Rtl => SchemeConfig::rtl(scheme, config.mem_ports),
            sb_uarch::Fidelity::Abstract => SchemeConfig::abstract_sim(scheme),
        };
        out.push((scheme.to_string(), cfg));
    }
    // The fifth evaluated variant: STT-Rename with the §9.2 split-store
    // ablation, which exercises the per-part taint parking paths.
    let mut split = SchemeConfig::rtl(Scheme::SttRename, config.mem_ports);
    split.split_store_taints = true;
    out.push(("STT-Rename+split".to_string(), split));
    out
}

#[test]
fn golden_stats_mega_all_schemes() {
    let config = CoreConfig::mega();
    let profiles = spec2017_profiles();
    for name in ["502.gcc", "505.mcf", "548.exchange2"] {
        let profile = profiles.iter().find(|p| p.name.contains(name)).unwrap();
        let trace = generate(profile, 4_000, 0xC0FFEE);
        for (tag, scheme_cfg) in scheme_variants(&config) {
            assert_golden(&config, scheme_cfg, &trace, &format!("mega/{name}/{tag}"));
        }
    }
}

#[test]
fn golden_stats_small_all_schemes() {
    // The small config stresses resource-stall paths (8-entry queues).
    let config = CoreConfig::small();
    let profiles = spec2017_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name.contains("520.omnetpp"))
        .unwrap();
    for seed in [1u64, 2, 3] {
        let trace = generate(profile, 3_000, seed);
        for (tag, scheme_cfg) in scheme_variants(&config) {
            assert_golden(&config, scheme_cfg, &trace, &format!("small/s{seed}/{tag}"));
        }
    }
}

#[test]
fn golden_stats_abstract_fidelity() {
    // Abstract fidelity: 1-cycle dispatch, unbounded broadcast, split
    // store taints — different wake timing than the RTL presets.
    let config = CoreConfig::gem5_stt();
    let profiles = spec2017_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name.contains("541.leela"))
        .unwrap();
    let trace = generate(profile, 3_000, 0xBEEF);
    for (tag, scheme_cfg) in scheme_variants(&config) {
        assert_golden(&config, scheme_cfg, &trace, &format!("gem5/{tag}"));
    }
}

#[test]
fn golden_stats_attack_kernels() {
    // The attack kernels drive explicit wrong-path injection, squash and
    // forwarding-error flushes through both schedulers.
    let config = CoreConfig::mega();
    for secret in [3usize, 11] {
        let spectre = spectre_v1_kernel(secret);
        let ssb = ssb_kernel(secret);
        for (tag, scheme_cfg) in scheme_variants(&config) {
            assert_golden(
                &config,
                scheme_cfg,
                &spectre.trace,
                &format!("spectre/{secret}/{tag}"),
            );
            assert_golden(
                &config,
                scheme_cfg,
                &ssb.trace,
                &format!("ssb/{secret}/{tag}"),
            );
        }
    }
}

#[test]
fn golden_leak_sets_attack_battery() {
    // The security verdict must not depend on which scheduler simulated
    // it: for every battery scenario, scheme variant AND threat model,
    // the set of probe slots changed by squashed instructions (the
    // transient leak set, decoded from cache state or MSHR occupancy per
    // scenario) and the total transient-change count must be identical
    // under the event wheel and the reference scheduler. Rides the same
    // oracle philosophy as the SimStats tests — the leak matrix is part
    // of the golden contract. The Futuristic axis is pinned here too:
    // under the Spectre model the secure schemes MUST leak the M-shadow
    // scenario (its root escapes C/D tracking), and under the Futuristic
    // model they must block it — the differential proof that the M/E
    // shadows do real work.
    let config = CoreConfig::mega();
    for secret in [2usize, 11] {
        for kernel in attack_battery(secret) {
            for model in ThreatModel::all() {
                for (tag, scheme_cfg) in scheme_variants(&config) {
                    let scheme_cfg = scheme_cfg.with_threat_model(model);
                    let measure = |kind: SchedulerKind| {
                        let mut run_config = with_scheduler(&config, kind);
                        if let Some(p) = kernel.predictor {
                            run_config.predictor =
                                PredictorConfig::enabled(p.pht_entries, p.btb_entries, p.ghr_bits);
                        }
                        let mut core = Core::new(run_config, scheme_cfg, kernel.trace.clone());
                        core.memory_mut().attach_leakage_observer();
                        core.memory_mut().attach_contention_observer();
                        core.run_to_completion(MAX_CYCLES);
                        let leakage = core.memory().leakage_observer().expect("attached");
                        let contention = core.memory().contention_observer().expect("attached");
                        (
                            kernel.decode_transient_slots(leakage, contention),
                            leakage.transient_changes().count(),
                            contention.transient_port_uses(),
                        )
                    };
                    let reference = measure(SchedulerKind::Reference);
                    let wheel = measure(SchedulerKind::EventWheel);
                    let label = format!("{}/{secret}/{model}/{tag}", kernel.trace.name());
                    assert_eq!(
                        reference, wheel,
                        "{label}: leak sets diverged across schedulers"
                    );
                    if scheme_cfg.scheme.is_secure() && kernel.claimed_under(model) {
                        assert!(
                            wheel.0.is_empty(),
                            "{label}: secure scheme leaked slots {:?}",
                            wheel.0
                        );
                    } else {
                        // Baseline always — and, pinned deliberately, a
                        // secure scheme on an out-of-claim scenario (the
                        // M-shadow kernel under the Spectre model).
                        assert!(
                            kernel.expected_slots.iter().all(|s| wheel.0.contains(s)),
                            "{label}: must leak {:?}, got {:?}",
                            kernel.expected_slots,
                            wheel.0
                        );
                        let allowed: BTreeSet<usize> =
                            kernel.allowed_slots.iter().copied().collect();
                        assert!(
                            wheel.0.is_subset(&allowed),
                            "{label}: leaked outside the secret address set: {:?}",
                            wheel.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn golden_stats_futuristic_threat_model() {
    // The Futuristic model exercises scheduler paths the Spectre model
    // never reaches (M-shadows resolving at commit, commit-gated untaint
    // broadcasts, masked-transmitter parking keyed by still-in-flight
    // roots): both schedulers must stay cycle-identical there too, on a
    // real workload profile and on the kernels that stress the new paths.
    let config = CoreConfig::mega();
    let profiles = spec2017_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name.contains("502.gcc"))
        .unwrap();
    let trace = generate(profile, 3_000, 0xF07);
    for (tag, scheme_cfg) in scheme_variants(&config) {
        let cfg = scheme_cfg.with_threat_model(ThreatModel::Futuristic);
        assert_golden(&config, cfg, &trace, &format!("futuristic/gcc/{tag}"));
        for kernel in [
            m_shadow_kernel(7),
            prime_probe_kernel(7),
            mshr_contention_kernel(7),
        ] {
            assert_golden(
                &config,
                cfg,
                &kernel.trace,
                &format!("futuristic/{}/{tag}", kernel.trace.name()),
            );
        }
    }
}

#[test]
fn golden_stats_store_loaded_traces() {
    // Closes the loop on the persistent trace store: a trace that went
    // through serialize → disk → deserialize must drive both schedulers to
    // statistics identical to the freshly generated trace, for every
    // scheme variant.
    let dir = std::env::temp_dir().join(format!("sb-golden-stats-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::new(&dir);
    let config = CoreConfig::mega();
    let profiles = spec2017_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name.contains("505.mcf"))
        .unwrap();

    let fresh = generate(profile, 3_000, 0xFEED);
    let cold = store.load_or_generate(profile, 3_000, 0xFEED);
    let loaded = store.load_or_generate(profile, 3_000, 0xFEED);
    assert_eq!(fresh, cold, "cold store pass altered the trace");
    assert_eq!(fresh, loaded, "store round-trip altered the trace");

    for (tag, scheme_cfg) in scheme_variants(&config) {
        for kind in [SchedulerKind::Reference, SchedulerKind::EventWheel] {
            let from_fresh = run(&with_scheduler(&config, kind), scheme_cfg, fresh.clone());
            let from_store = run(&with_scheduler(&config, kind), scheme_cfg, loaded.clone());
            assert_eq!(
                from_fresh, from_store,
                "store/{tag}/{kind:?}: cached trace diverged from fresh"
            );
        }
        // And the cached trace still satisfies the cross-scheduler oracle.
        assert_golden(&config, scheme_cfg, &loaded, &format!("store/{tag}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_wheel_is_the_default() {
    assert_eq!(CoreConfig::mega().scheduler, SchedulerKind::EventWheel);
    assert_eq!(SchedulerKind::default(), SchedulerKind::EventWheel);
}
