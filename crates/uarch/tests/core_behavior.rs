//! Behavioural tests for the out-of-order core and the secure-speculation
//! scheme hooks: each test pins one mechanism the paper's evaluation relies
//! on (taint gating, delayed broadcast, partial store issue, forwarding
//! errors, transient-leak blocking).

use sb_core::Scheme;
use sb_isa::{ArchReg, MicroOp, OpClass, Trace, TraceBuilder};
use sb_uarch::{Core, CoreConfig};

fn x(n: u8) -> ArchReg {
    ArchReg::int(n)
}

fn run(config: CoreConfig, scheme: Scheme, trace: Trace) -> Core {
    let mut core = Core::with_scheme(config, scheme, trace);
    core.run_to_completion(2_000_000);
    core
}

fn cycles(config: CoreConfig, scheme: Scheme, trace: &Trace) -> u64 {
    run(config, scheme, trace.clone()).stats().cycles.get()
}

/// Straight-line independent ALU ops: a 4-wide core should sustain close to
/// 4 IPC; a 1-wide core close to 1.
#[test]
fn width_bounds_throughput() {
    let mut b = TraceBuilder::new("alu");
    for i in 0..4000u32 {
        b.alu(x((1 + (i % 8)) as u8), None, None);
    }
    let t = b.build();
    let mega = cycles(CoreConfig::mega(), Scheme::Baseline, &t);
    let small = cycles(CoreConfig::small(), Scheme::Baseline, &t);
    assert!(mega < 1400, "mega should sustain ~4 IPC, took {mega}");
    assert!(small >= 4000, "small is 1-wide, took {small}");
    assert!(small < 4400, "small should still be near 1 IPC");
}

/// A dependent ALU chain is latency-bound regardless of width.
#[test]
fn dependency_chain_serializes() {
    let mut b = TraceBuilder::new("chain");
    for _ in 0..1000 {
        b.alu(x(1), Some(x(1)), None);
    }
    let t = b.build();
    let c = cycles(CoreConfig::mega(), Scheme::Baseline, &t);
    assert!(c >= 1000, "chain must serialize, took {c}");
}

/// All four schemes commit exactly the trace's instruction count — squashes
/// and replays never lose or duplicate architectural work.
#[test]
fn all_schemes_commit_the_same_work() {
    let mut b = TraceBuilder::new("mixed");
    for i in 0..300u64 {
        b.load(x(1), x(2), 0x1000 + (i % 16) * 8, 8);
        b.alu(x(3), Some(x(1)), Some(x(3)));
        b.store(x(2), x(3), 0x2000 + (i % 8) * 8, 8);
        b.branch(Some(x(3)), None, i % 3 == 0, i % 17 == 0);
        b.load(x(4), x(2), 0x2000 + (i % 8) * 8, 8);
    }
    let t = b.build();
    for scheme in Scheme::all() {
        let core = run(CoreConfig::mega(), scheme, t.clone());
        assert_eq!(
            core.stats().committed.get(),
            t.len() as u64,
            "{scheme} must commit the whole trace"
        );
    }
}

/// Determinism: identical runs produce identical statistics.
#[test]
fn simulation_is_deterministic() {
    let mut b = TraceBuilder::new("det");
    for i in 0..200u64 {
        b.load(x(1), x(2), 0x4000 + (i % 32) * 64, 8);
        b.alu(x(2), Some(x(1)), None);
        b.branch(Some(x(2)), None, false, i % 11 == 0);
    }
    let t = b.build();
    let a = run(CoreConfig::large(), Scheme::SttIssue, t.clone());
    let b2 = run(CoreConfig::large(), Scheme::SttIssue, t);
    assert_eq!(a.stats(), b2.stats());
}

/// Builds the taint-gating kernel: a long-latency branch keeps a shadow
/// open; under it, a load feeds a dependent load (a transmitter).
fn taint_kernel(n: u64) -> Trace {
    let mut b = TraceBuilder::new("taint");
    for i in 0..n {
        // Slow producer for the branch operand: a DRAM-cold load.
        b.load(x(9), x(8), 0x100_0000 + i * 4096, 8);
        b.branch(Some(x(9)), None, false, false);
        // Under the branch's shadow: pointer chase (load -> load).
        b.load(x(1), x(2), 0x2000 + (i % 4) * 64, 8);
        b.alu(x(3), Some(x(1)), None);
        b.load(x(4), x(3), 0x3000 + (i % 4) * 64, 8);
    }
    b.build()
}

/// STT must delay tainted transmitters: the secure schemes take strictly
/// more cycles than baseline on the taint kernel, and STT-Issue wastes
/// issue slots discovering taints (§4.3 step 4).
#[test]
fn stt_delays_tainted_transmitters() {
    let t = taint_kernel(200);
    let base = run(CoreConfig::mega(), Scheme::Baseline, t.clone());
    let rename = run(CoreConfig::mega(), Scheme::SttRename, t.clone());
    let issue = run(CoreConfig::mega(), Scheme::SttIssue, t);

    assert!(
        rename.stats().cycles.get() > base.stats().cycles.get(),
        "STT-Rename must pay for taint gating"
    );
    assert!(
        issue.stats().cycles.get() > base.stats().cycles.get(),
        "STT-Issue must pay for taint gating"
    );
    assert!(rename.stats().delayed_transmitters.get() > 0);
    assert!(
        issue.stats().wasted_issue_slots.get() > 0,
        "nop-issued slots"
    );
    assert_eq!(base.stats().wasted_issue_slots.get(), 0);
    assert!(base.stats().delayed_transmitters.get() == 0);
}

/// §9.1: STT-Issue can issue a transmitter the cycle its root becomes safe,
/// while STT-Rename waits for the broadcast — so STT-Issue is at least as
/// fast on the taint kernel.
#[test]
fn stt_issue_is_no_slower_than_stt_rename() {
    let t = taint_kernel(300);
    let rename = cycles(CoreConfig::mega(), Scheme::SttRename, &t);
    let issue = cycles(CoreConfig::mega(), Scheme::SttIssue, &t);
    assert!(
        issue <= rename,
        "STT-Issue ({issue}) should not be slower than STT-Rename ({rename})"
    );
}

/// NDA delays *all* dependents of speculative loads, not just transmitters,
/// so it loses more IPC than STT on a compute-after-load kernel (§8.1's
/// imagick discussion).
#[test]
fn nda_hurts_compute_bound_kernels_more_than_stt() {
    let mut b = TraceBuilder::new("compute");
    for i in 0..300u64 {
        b.branch(Some(x(7)), None, false, false);
        b.load(x(1), x(2), 0x2000 + (i % 4) * 64, 8);
        // A pile of invisible compute on the loaded value.
        for _ in 0..6 {
            b.alu(x(3), Some(x(1)), Some(x(3)));
        }
        b.alu(x(7), Some(x(3)), None);
    }
    let t = b.build();
    let base = cycles(CoreConfig::mega(), Scheme::Baseline, &t);
    let stt = cycles(CoreConfig::mega(), Scheme::SttIssue, &t);
    let nda = cycles(CoreConfig::mega(), Scheme::Nda, &t);
    assert!(nda > stt, "NDA ({nda}) must lose more than STT ({stt})");
    assert!(stt >= base);
    let nda_run = run(CoreConfig::mega(), Scheme::Nda, t);
    assert!(
        nda_run.stats().delayed_transmitters.get() > 0,
        "NDA must have delayed load broadcasts"
    );
    assert!(nda_run.stats().scheme_broadcasts.get() > 0);
}

/// Store-to-load forwarding works: a load overlapping an older store with
/// known address and data forwards instead of reading the cache.
#[test]
fn store_to_load_forwarding_happens() {
    let mut b = TraceBuilder::new("fwd");
    b.alu(x(1), None, None);
    b.store(x(2), x(1), 0x9000, 8);
    b.load(x(3), x(2), 0x9000, 8);
    let core = run(CoreConfig::small(), Scheme::Baseline, b.build());
    // The load never touched the memory hierarchy for 0x9000 as a read:
    // only the store's commit write did. Forwarding means no L1D read miss
    // beyond the store's own write.
    assert_eq!(core.stats().forwarding_errors.get(), 0);
    assert_eq!(core.stats().committed.get(), 3);
}

/// Forwarding-error recovery: a load that speculates past a store with a
/// slow address operand and aliases it must flush and replay (§6, §9.2).
#[test]
fn forwarding_error_flushes_and_replays() {
    let mut b = TraceBuilder::new("fwd-err");
    // Slow address operand: cold load feeding the store's address register.
    b.load(x(1), x(8), 0x200_0000, 8);
    b.alu(x(2), Some(x(1)), None);
    b.store(x(2), x(3), 0xA000, 8);
    // Aliasing younger load issues long before the store address is known.
    b.load(x(4), x(5), 0xA000, 8);
    b.alu(x(6), Some(x(4)), None);
    let t = b.build();
    let core = run(CoreConfig::mega(), Scheme::Baseline, t.clone());
    assert!(
        core.stats().forwarding_errors.get() >= 1,
        "the aliasing load must be caught"
    );
    assert!(core.stats().memdep_speculations.get() >= 1);
    assert!(core.stats().squashed.get() >= 1);
    assert_eq!(core.stats().committed.get(), t.len() as u64);
}

/// §9.2 (exchange2): STT-Rename's unified store taint blocks address
/// generation when only the *data* operand is tainted, causing forwarding
/// errors that STT-Issue avoids by checking the address operand alone.
#[test]
fn unified_store_taint_causes_forwarding_errors() {
    let mut b = TraceBuilder::new("exchange2-micro");
    for i in 0..120u64 {
        // Shadow source: a store whose address operand arrives late-ish.
        b.branch(Some(x(7)), None, false, false);
        // Speculative load producing the store's DATA operand (tainted).
        b.load(x(1), x(2), 0x2000 + (i % 8) * 64, 8);
        // Store: address operand x5 is clean and ready; data x1 is tainted.
        b.store(x(5), x(1), 0xB000 + (i % 4) * 8, 8);
        // Younger aliasing load.
        b.load(x(3), x(5), 0xB000 + (i % 4) * 8, 8);
        b.alu(x(7), Some(x(3)), None);
    }
    let t = b.build();
    let rename = run(CoreConfig::mega(), Scheme::SttRename, t.clone());
    let issue = run(CoreConfig::mega(), Scheme::SttIssue, t.clone());
    assert!(
        rename.stats().forwarding_errors.get() > issue.stats().forwarding_errors.get(),
        "STT-Rename ({}) must suffer more forwarding errors than STT-Issue ({})",
        rename.stats().forwarding_errors.get(),
        issue.stats().forwarding_errors.get()
    );

    // The split-store ablation (§9.2's proposed optimization) rescues
    // STT-Rename.
    let mut cfg = sb_core::SchemeConfig::rtl(Scheme::SttRename, CoreConfig::mega().mem_ports);
    cfg.split_store_taints = true;
    let mut split = Core::new(CoreConfig::mega(), cfg, t);
    split.run_to_completion(2_000_000);
    assert!(
        split.stats().forwarding_errors.get() < rename.stats().forwarding_errors.get(),
        "split store taints must reduce forwarding errors"
    );
}

/// Mispredicted branches squash wrong-path work and pay the redirect
/// penalty; commit counts stay exact.
#[test]
fn mispredict_recovery_is_exact() {
    let mut b = TraceBuilder::new("mispredict");
    for i in 0..100u64 {
        b.alu(x(1), Some(x(1)), None);
        let br = b.branch(Some(x(1)), None, true, true);
        b.wrong_path(
            br,
            vec![
                MicroOp::alu(x(2), Some(x(1)), None),
                MicroOp::load(x(3), x(2), 0x7000 + i * 64, 8),
            ],
        );
        b.alu(x(4), None, None);
    }
    let t = b.build();
    let core = run(CoreConfig::large(), Scheme::Baseline, t.clone());
    assert_eq!(core.stats().committed.get(), t.len() as u64);
    assert_eq!(core.stats().branch_mispredicts.get(), 100);
    assert!(
        core.stats().squashed.get() >= 100,
        "wrong-path ops squashed"
    );
}

/// The Spectre-v1 shape: a transient (wrong-path) secret-dependent load
/// must warm the probe line under the unsafe baseline and must NOT under
/// STT-Rename, STT-Issue, or NDA.
#[test]
fn transient_leak_blocked_by_secure_schemes() {
    const PROBE: u64 = 0x40_0000;

    let build = || {
        let mut b = TraceBuilder::new("spectre");
        // Victim warms the secret's line (it is architecturally reachable
        // data; the *probe* array is what carries the leak).
        b.load(x(6), x(8), 0x1234_0000, 8);
        // Slow branch operand: a cold load plus a divide chain opens a long
        // transient window (the bounds check that resolves late).
        b.load(x(9), x(8), 0x300_0000, 8);
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        let br = b.branch(Some(x(9)), None, true, true);
        b.wrong_path(
            br,
            vec![
                // Transient secret access (allowed by STT: address clean).
                MicroOp::load(x(1), x(2), 0x1234_0000, 8),
                // Compute on the secret.
                MicroOp::alu(x(3), Some(x(1)), None),
                // Transmit: secret-dependent address.
                MicroOp::load(x(4), x(3), PROBE, 8),
            ],
        );
        b.alu(x(5), None, None);
        b.build()
    };

    let baseline = run(CoreConfig::mega(), Scheme::Baseline, build());
    assert!(
        baseline.memory().probe_l1d(PROBE),
        "unsafe baseline must leak through the cache side channel"
    );

    for scheme in Scheme::secure() {
        let core = run(CoreConfig::mega(), scheme, build());
        assert!(
            !core.memory().probe_l1d(PROBE),
            "{scheme} must block the transient transmit load"
        );
    }
}

/// NDA disables speculative load-hit scheduling, so it must record no
/// replay events while the baseline does on a miss-heavy kernel.
#[test]
fn nda_has_no_load_hit_replays() {
    let mut b = TraceBuilder::new("misses");
    for i in 0..200u64 {
        b.load(x(1), x(2), 0x500_0000 + i * 640, 8);
        b.alu(x(3), Some(x(1)), None);
    }
    let t = b.build();
    let base = run(CoreConfig::mega(), Scheme::Baseline, t.clone());
    let nda = run(CoreConfig::mega(), Scheme::Nda, t);
    assert!(
        base.stats().replay_events.get() > 0,
        "baseline replays on misses"
    );
    assert_eq!(
        nda.stats().replay_events.get(),
        0,
        "NDA never replays (§5.1)"
    );
}

/// The STT-Rename same-cycle YRoT chain depth grows with dispatch width
/// on dependent code (§4.1): a 4-wide core sees deeper chains than a
/// 1-wide core, feeding the timing model.
#[test]
fn rename_chain_depth_scales_with_width() {
    let mut b = TraceBuilder::new("chain-width");
    for i in 0..400u64 {
        b.branch(Some(x(7)), None, false, false);
        b.load(x(1), x(2), 0x2000 + (i % 4) * 64, 8);
        b.alu(x(3), Some(x(1)), None);
        b.alu(x(4), Some(x(3)), None);
        b.alu(x(7), Some(x(4)), None);
    }
    let t = b.build();
    let mega = run(CoreConfig::mega(), Scheme::SttRename, t.clone());
    let small = run(CoreConfig::small(), Scheme::SttRename, t);
    assert!(
        mega.max_rename_chain() > small.max_rename_chain(),
        "wider rename groups must produce deeper same-cycle chains ({} vs {})",
        mega.max_rename_chain(),
        small.max_rename_chain()
    );
    assert_eq!(small.max_rename_chain(), 1, "1-wide has no same-cycle deps");
}

/// Branch-tag exhaustion stalls rename (checkpoint pressure); STT's
/// delayed branch resolution makes it worse than baseline.
#[test]
fn checkpoint_pressure_under_stt() {
    let mut b = TraceBuilder::new("branchy");
    for i in 0..400u64 {
        b.load(x(1), x(2), 0x600_0000 + (i % 64) * 4096, 8);
        b.branch(Some(x(1)), None, false, false);
    }
    let t = b.build();
    let base = run(CoreConfig::small(), Scheme::Baseline, t.clone());
    let stt = run(CoreConfig::small(), Scheme::SttRename, t);
    assert!(
        stt.stats().checkpoint_stalls.get() >= base.stats().checkpoint_stalls.get(),
        "STT holds branches longer, so checkpoint stalls cannot shrink"
    );
}

/// Loads and branch classes commit with correct per-class counters.
#[test]
fn per_class_commit_counters() {
    let mut b = TraceBuilder::new("classes");
    b.load(x(1), x(2), 0x40, 8);
    b.store(x(2), x(1), 0x80, 8);
    b.branch(Some(x(1)), None, false, false);
    b.alu(x(3), None, None);
    b.push(MicroOp::compute(OpClass::FpMul, ArchReg::fp(1), None, None));
    let core = run(CoreConfig::small(), Scheme::Baseline, b.build());
    let s = core.stats();
    assert_eq!(s.committed.get(), 5);
    assert_eq!(s.committed_loads.get(), 1);
    assert_eq!(s.committed_stores.get(), 1);
    assert_eq!(s.committed_branches.get(), 1);
}

/// §6's Futuristic extension: tracking M/E shadows in addition to C/D must
/// cost additional IPC under every secure scheme (loads stay speculative
/// until bound to commit).
#[test]
fn futuristic_threat_model_costs_more() {
    use sb_core::{SchemeConfig, ThreatModel};
    let mut b = TraceBuilder::new("futuristic");
    for i in 0..300u64 {
        // A cold independent load keeps commit (and thus M-shadow
        // resolution) trailing far behind completion.
        b.load(x(9), x(8), 0x700_0000 + i * 4096, 8);
        // A hot load feeding a transmitter: no C/D shadow covers it, so
        // only the Futuristic model delays the dependent load.
        b.load(x(1), x(2), 0x2000 + (i % 4) * 64, 8);
        b.alu(x(3), Some(x(1)), None);
        b.load(x(4), x(3), 0x3000 + (i % 4) * 64, 8);
    }
    let t = b.build();
    for scheme in Scheme::secure() {
        let cycles_for = |model: ThreatModel| {
            let cfg = SchemeConfig::rtl(scheme, 2).with_threat_model(model);
            let mut core = Core::new(CoreConfig::mega(), cfg, t.clone());
            core.run_to_completion(2_000_000);
            core.stats().cycles.get()
        };
        let spectre = cycles_for(ThreatModel::Spectre);
        let futuristic = cycles_for(ThreatModel::Futuristic);
        assert!(
            futuristic > spectre,
            "{scheme}: Futuristic ({futuristic}) must cost more than Spectre ({spectre})"
        );
    }
    // The unsafe baseline is unaffected by the threat model (no gating).
    let base = |model: sb_core::ThreatModel| {
        let cfg = sb_core::SchemeConfig::rtl(Scheme::Baseline, 2).with_threat_model(model);
        let mut core = Core::new(CoreConfig::mega(), cfg, t.clone());
        core.run_to_completion(2_000_000);
        core.stats().cycles.get()
    };
    assert_eq!(
        base(sb_core::ThreatModel::Spectre),
        base(sb_core::ThreatModel::Futuristic)
    );
}

/// M-shadow lifecycle, cast side (§6): under the Futuristic model a load
/// casts a Memory shadow at *dispatch*, not at issue or completion, and
/// the identical trace under the Spectre model casts nothing.
#[test]
fn m_shadow_is_cast_at_dispatch_and_only_under_futuristic() {
    use sb_core::{SchemeConfig, ThreatModel};
    let mut b = TraceBuilder::new("m-cast");
    b.load(x(1), x(2), 0x900_0000, 8); // cold: stays in flight a long time
    b.alu(x(3), None, None);
    b.alu(x(4), None, None);
    let t = b.build();
    for (model, expected) in [(ThreatModel::Spectre, 0), (ThreatModel::Futuristic, 1)] {
        let cfg = SchemeConfig::rtl(Scheme::Baseline, 2).with_threat_model(model);
        let mut core = Core::new(CoreConfig::mega(), cfg, t.clone());
        assert_eq!(core.shadows_in_flight(), 0, "{model:?}: nothing dispatched");
        core.step(); // the whole group dispatches in cycle 0
        assert_eq!(
            core.shadows_in_flight(),
            expected,
            "{model:?}: M-shadow presence right after dispatch"
        );
        core.run_to_completion(1_000_000);
        assert_eq!(core.shadows_in_flight(), 0, "{model:?}: drained at the end");
    }
}

/// M-shadow lifecycle, release side: the shadow outlives the load's
/// *completion* (data back from DRAM) and dies exactly when the load is
/// bound to commit — the `shadow_token` resolved on the commit path.
#[test]
fn m_shadow_survives_completion_and_releases_at_commit() {
    use sb_core::{SchemeConfig, ThreatModel};
    use sb_isa::OpClass;
    let mut b = TraceBuilder::new("m-release");
    // A ~120-cycle dependent divide chain ahead of the load keeps the ROB
    // head busy long past the load's ~98-cycle DRAM fill: the load
    // completes around cycle 102 but cannot commit before ~123, so the
    // shadow's survival past completion is structurally guaranteed.
    for _ in 0..10 {
        b.push(MicroOp::compute(OpClass::IntDiv, x(7), Some(x(7)), None));
    }
    b.load(x(1), x(2), 0x2000, 8);
    b.alu(x(3), None, None);
    let t = b.build();
    let cfg = SchemeConfig::rtl(Scheme::Baseline, 2).with_threat_model(ThreatModel::Futuristic);
    let mut core = Core::new(CoreConfig::mega(), cfg, t);
    // Step until the load has executed (its L1/L2/DRAM access happened —
    // observable as a demand access) but nothing has committed.
    while core.memory().demand_accesses() == 0 {
        core.step();
        assert!(core.cycle() < 10_000, "load never executed");
    }
    assert_eq!(
        core.shadows_in_flight(),
        1,
        "the M-shadow must survive the load's execution"
    );
    // The divides at the head take ~28 cycles; the load completes well
    // before. Its shadow must persist every cycle until the load commits.
    while core.stats().committed_loads.get() == 0 {
        assert_eq!(
            core.shadows_in_flight(),
            1,
            "released before bound-to-commit"
        );
        core.step();
        assert!(core.cycle() < 10_000, "load never committed");
    }
    assert_eq!(
        core.shadows_in_flight(),
        0,
        "bound-to-commit must release the M-shadow"
    );
}

/// M-shadow lifecycle, squash side: wrong-path loads cast M-shadows under
/// the Futuristic model; the mispredict squash must reclaim them (a leaked
/// shadow would pin the speculation frontier and deadlock the core).
#[test]
fn squash_reclaims_wrong_path_m_shadows() {
    use sb_core::{SchemeConfig, ThreatModel};
    let mut b = TraceBuilder::new("m-squash");
    b.load(x(9), x(8), 0x900_0000, 8); // slow branch operand
    let br = b.branch(Some(x(9)), None, true, true);
    b.wrong_path(
        br,
        vec![
            MicroOp::load(x(1), x(2), 0x2000, 8),
            MicroOp::load(x(3), x(2), 0x2040, 8),
            MicroOp::load(x(4), x(2), 0x2080, 8),
        ],
    );
    b.alu(x(5), None, None);
    let t = b.build();
    let peak = |model: ThreatModel| {
        let cfg = SchemeConfig::rtl(Scheme::Baseline, 2).with_threat_model(model);
        let mut core = Core::new(CoreConfig::mega(), cfg, t.clone());
        let mut peak = 0;
        while !core.is_done() {
            peak = peak.max(core.shadows_in_flight());
            core.step();
            assert!(core.cycle() < 1_000_000, "deadlock");
        }
        assert_eq!(core.shadows_in_flight(), 0, "{model:?}: shadows leaked");
        assert_eq!(core.stats().committed.get(), t.len() as u64);
        peak
    };
    let spectre_peak = peak(ThreatModel::Spectre);
    let futuristic_peak = peak(ThreatModel::Futuristic);
    assert!(
        futuristic_peak > spectre_peak,
        "wrong-path loads must have cast extra M-shadows \
         (futuristic peak {futuristic_peak} vs spectre peak {spectre_peak})"
    );
    // Spectre tracks only the branch's C-shadow; Futuristic adds the
    // correct-path load's M-shadow plus the three wrong-path loads'.
    assert!(futuristic_peak >= 4, "peak was {futuristic_peak}");
}

/// The memory-dependence predictor stops a load from re-speculating against
/// the same still-unresolved store after its first forwarding violation —
/// exactly one flush, not a livelock.
#[test]
fn memdep_predictor_prevents_repeat_violations() {
    let mut b = TraceBuilder::new("memdep");
    // Store address takes a very long time: cold DRAM load + divide chain.
    b.load(x(1), x(8), 0x700_0000, 8);
    b.push(MicroOp::compute(OpClass::IntDiv, x(1), Some(x(1)), None));
    b.push(MicroOp::compute(OpClass::IntDiv, x(1), Some(x(1)), None));
    b.push(MicroOp::compute(OpClass::IntDiv, x(1), Some(x(1)), None));
    b.store(x(1), x(3), 0xC000, 8);
    // Aliasing load + dependents.
    b.load(x(4), x(5), 0xC000, 8);
    b.alu(x(6), Some(x(4)), None);
    let t = b.build();
    let mut core = Core::with_scheme(CoreConfig::mega(), Scheme::Baseline, t.clone());
    core.run_to_completion(1_000_000);
    assert_eq!(
        core.stats().forwarding_errors.get(),
        1,
        "exactly one violation: the replay must wait, not re-speculate"
    );
    assert_eq!(core.stats().committed.get(), t.len() as u64);
}

/// TraceDoctor-style stall attribution (§7): every zero-retire cycle is
/// attributed to exactly one cause; the baseline never blames the scheme;
/// and a broadcast-starved transmitter at the ROB head is blamed on the
/// scheme under STT.
#[test]
fn stall_attribution_is_complete_and_scheme_aware() {
    // Baseline sanity on a memory-bound kernel.
    let t = taint_kernel(150);
    let base = run(CoreConfig::mega(), Scheme::Baseline, t.clone());
    assert_eq!(
        base.stats().stalls.scheme.get(),
        0,
        "baseline has no scheme stalls"
    );
    assert!(
        base.stats().stalls.memory.get() > 0,
        "cold loads are memory stalls"
    );
    assert!(base.stats().stalls.total() <= base.stats().cycles.get());

    // Broadcast starvation: one long shadow covers a burst of loads; when
    // it resolves, the untaint broadcasts drain at memory width, and the
    // final masked transmitter reaches the head still waiting for its
    // broadcast — a head-visible scheme stall.
    let mut b = TraceBuilder::new("bcast-starve");
    b.load(x(9), x(8), 0x900_0000, 8);
    b.branch(Some(x(9)), None, false, false);
    for i in 0..24u64 {
        b.load(x((16 + i % 8) as u8), x(2), 0x2000 + (i % 8) * 64, 8);
    }
    b.alu(x(3), Some(x(23)), None);
    b.load(x(4), x(3), 0xA000, 8); // transmitter fed by the last burst load
    let starve = b.build();
    let rename = run(CoreConfig::mega(), Scheme::SttRename, starve);
    assert!(
        rename.stats().stalls.scheme.get() > 0,
        "a broadcast-starved masked head must be attributed to the scheme: {}",
        rename.stats().stalls
    );
    for scheme in Scheme::secure() {
        let core = run(CoreConfig::mega(), scheme, t.clone());
        assert!(core.stats().stalls.total() <= core.stats().cycles.get());
    }
}

// --- Modelled frontend predictor -------------------------------------

/// A mega config with the modelled predictor switched on (pure per-pc
/// bimodal indexing: ghr_bits = 0).
fn pred_config(pht: usize, btb: usize, ghr_bits: u32) -> CoreConfig {
    let mut c = CoreConfig::mega();
    c.predictor = sb_uarch::PredictorConfig::enabled(pht, btb, ghr_bits);
    c
}

/// With no branches in the trace, enabling the predictor changes nothing:
/// every statistic matches the predictor-off run bit for bit.
#[test]
fn enabled_predictor_is_inert_without_branches() {
    let mut b = TraceBuilder::new("no-branches");
    for i in 0..300u64 {
        b.load(x(1), x(2), 0x4000 + (i % 32) * 64, 8);
        b.alu(x(2), Some(x(1)), None);
    }
    let t = b.build();
    let off = run(CoreConfig::mega(), Scheme::Baseline, t.clone());
    let on = run(pred_config(64, 16, 0), Scheme::Baseline, t);
    assert_eq!(off.stats(), on.stats());
}

/// A repeated taken loop branch: the cold predictor mispredicts it once
/// (weakly not-taken counters, empty BTB), trains, and then predicts every
/// later iteration correctly — even though the trace statically marks the
/// branch well-predicted throughout.
#[test]
fn predictor_learns_a_loop_branch() {
    let mut b = TraceBuilder::new("loop");
    for _ in 0..50 {
        b.alu(x(1), None, None);
        b.branch_at(None, None, true, false, 0x40, 0x80);
    }
    let t = b.build();
    let core = run(pred_config(64, 16, 0), Scheme::Baseline, t.clone());
    assert_eq!(core.stats().committed.get(), t.len() as u64);
    assert_eq!(
        core.stats().branch_mispredicts.get(),
        1,
        "one cold mispredict, then the tables carry it"
    );
    // Predictor off: the static bit says well-predicted, so zero.
    let off = run(CoreConfig::mega(), Scheme::Baseline, t);
    assert_eq!(off.stats().branch_mispredicts.get(), 0);
}

/// An always-not-taken branch never needs the BTB: the cold weakly
/// not-taken counters already predict it, so no mispredicts at all.
#[test]
fn cold_predictor_gets_not_taken_branches_right() {
    let mut b = TraceBuilder::new("nt");
    for _ in 0..50 {
        b.alu(x(1), None, None);
        b.branch_at(None, None, false, false, 0x48, 0);
    }
    let core = run(pred_config(64, 16, 0), Scheme::Baseline, b.build());
    assert_eq!(core.stats().branch_mispredicts.get(), 0);
}

/// Predictor state written by squashed wrong-path branches survives the
/// squash and is recorded transient by the leakage observer — the
/// spectre-v2-squash channel primitive.
#[test]
fn wrong_path_branch_training_survives_squash_as_transient_events() {
    let mut b = TraceBuilder::new("v2-squash");
    // Slow operand keeps the window open.
    b.load(x(9), x(8), 0x300_0000, 8);
    b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
    let br = b.branch(Some(x(9)), None, true, true);
    b.wrong_path(
        br,
        vec![
            // A transient branch at pc 0x7 (PHT index 7), taken: trains
            // the PHT and fills the BTB, then is squashed.
            MicroOp::branch_at(None, None, true, false, 0x7, 0x200),
        ],
    );
    b.alu(x(5), None, None);
    let mut core = Core::with_scheme(pred_config(64, 16, 0), Scheme::Baseline, b.build());
    core.memory_mut().attach_leakage_observer();
    core.run_to_completion(2_000_000);
    let obs = core.memory().leakage_observer().unwrap();
    let slots = obs.transient_predictor_slots(0, 1, 64);
    assert!(
        slots.contains(&7),
        "the squashed branch's PHT training must be transient: {slots:?}"
    );
}

/// Under the secure schemes a tainted transient branch is gated from
/// executing until the squash, so it never trains the predictor: the v2
/// channel closes. (The branch's operand is a transiently loaded secret —
/// exactly the PHT-poisoning shape.)
#[test]
fn secure_schemes_block_tainted_transient_branch_training() {
    let build = || {
        let mut b = TraceBuilder::new("v2-pht");
        b.load(x(9), x(8), 0x300_0000, 8);
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        b.push(MicroOp::compute(OpClass::IntDiv, x(9), Some(x(9)), None));
        let br = b.branch(Some(x(9)), None, true, true);
        b.wrong_path(
            br,
            vec![
                // Transient secret access...
                MicroOp::load(x(1), x(2), 0x1234_0000, 8),
                // ...feeding a branch: a secret-dependent direction.
                MicroOp::branch_at(Some(x(1)), None, false, false, 0x9, 0),
            ],
        );
        b.alu(x(5), None, None);
        b.build()
    };
    let observe = |scheme: Scheme| {
        let mut core = Core::with_scheme(pred_config(64, 16, 0), scheme, build());
        core.memory_mut().attach_leakage_observer();
        core.run_to_completion(2_000_000);
        core.memory()
            .leakage_observer()
            .unwrap()
            .transient_predictor_slots(0, 1, 64)
    };
    let base = observe(Scheme::Baseline);
    assert!(
        base.contains(&9),
        "baseline must leak through PHT training: {base:?}"
    );
    for scheme in Scheme::secure() {
        let slots = observe(scheme);
        assert!(
            !slots.contains(&9),
            "{scheme} must gate the tainted transient branch: {slots:?}"
        );
    }
}

/// BTB injection end to end: an attacker branch aliasing the victim's BTB
/// entry (same index, different tag) replaces the target, so the victim's
/// next fetch tag-misses and mispredicts — opening a transient window the
/// trace models with a wrong-path block.
#[test]
fn btb_aliasing_reopens_the_victims_transient_window() {
    const V: u64 = 0x40; // victim branch pc
    const A: u64 = V + 16; // same BTB index (16 entries), different tag
    let build = |inject: bool| {
        let mut b = TraceBuilder::new("v2-btb");
        // Victim warmup: train V taken -> PHT counter up, BTB[V] = 0x100.
        for _ in 0..3 {
            b.branch_at(None, None, true, false, V, 0x100);
        }
        if inject {
            // Attacker cross-trains the aliasing branch.
            for _ in 0..3 {
                b.branch_at(None, None, true, false, A, 0x200);
            }
        }
        // Victim executes again: statically mispredicted so the builder
        // accepts a wrong-path block; dynamically the predictor decides.
        let br = b.branch_at(None, None, true, true, V, 0x100);
        b.wrong_path(br, vec![MicroOp::load(x(4), x(3), 0x40_0000, 8)]);
        b.alu(x(5), None, None);
        b.build()
    };
    // Without injection the trained predictor rides through the branch:
    // no mispredict, no transient window, probe line cold.
    let clean = run(pred_config(64, 16, 0), Scheme::Baseline, build(false));
    assert!(!clean.memory().probe_l1d(0x40_0000));
    // With injection the tag mismatch forces a dynamic mispredict and the
    // wrong-path transmit warms the probe line.
    let inj = run(pred_config(64, 16, 0), Scheme::Baseline, build(true));
    assert!(inj.memory().probe_l1d(0x40_0000));
    assert!(inj.stats().branch_mispredicts.get() > clean.stats().branch_mispredicts.get());
}
