//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal property-testing harness behind the subset of the proptest API
//! the test suite uses: the [`Strategy`] trait with `prop_map`, range /
//! tuple / `any::<bool>()` strategies, `prop_oneof!`, the collection
//! strategies `vec` and `btree_set`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and the deterministic per-test seed, which is enough to
//! reproduce (generation is a pure function of the test name and case
//! index).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Per-test deterministic RNG.
pub struct TestRng(SmallRng);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// Builds the deterministic RNG for a named generated test.
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    TestRng(SmallRng::seed_from_u64(seed))
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only the case count is modelled).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
///
/// Object-safe: `prop_oneof!` boxes heterogeneous strategies producing the
/// same value type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    alternatives: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `alternatives`.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    #[must_use]
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_index(self.alternatives.len());
        self.alternatives[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`
    /// (best-effort when the element domain is small).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set strategy.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Uniform choice between strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Property assertion: fails the current case without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
}

/// Declares property tests, mirroring proptest's block form (with optional
/// leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x), "x = {x}");
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u8..4, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
        ) {
            prop_assert!(pair.0 >= 2 && pair.0 <= 6);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..10, 1..9),
            s in prop::collection::btree_set(0u64..1000, 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(!s.is_empty() && s.len() < 20);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }

        #[test]
        fn oneof_draws_every_arm_type(
            x in prop_oneof![(0u8..1).prop_map(|_| 0u32), (0u8..1).prop_map(|_| 1u32)]
        ) {
            prop_assert!(x < 2u32);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..6);
        let a = strat.generate(&mut crate::test_rng("t"));
        let b = strat.generate(&mut crate::test_rng("t"));
        let c = strat.generate(&mut crate::test_rng("u"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
