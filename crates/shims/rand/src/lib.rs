//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the tiny subset of the `rand 0.8` API the workload generator uses:
//! [`rngs::SmallRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`) and
//! [`SeedableRng::seed_from_u64`]. The generator only relies on
//! *determinism* — the same seed must always produce the same stream — not
//! on matching upstream `rand`'s exact output, so the implementation is a
//! plain xoshiro256++ behind the same method names.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (only the `u64` convenience form is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full type domain (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` supports over half-open ranges.
pub trait UniformInt: Copy {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is ≤ span / 2^64 — irrelevant for workload
                // synthesis, where only determinism matters.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value from the standard (full-domain / unit-interval)
    /// distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} far from uniform");
        }
    }
}
