//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal wall-clock bench harness behind the subset of the criterion API
//! the bench files use: `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Bench targets still declare `harness = false`
//! and run with `cargo bench`; each function is timed adaptively (iteration
//! count doubles until the measurement window is filled) and a
//! `ns/iter` line is printed per benchmark.
//!
//! The measurement window defaults to 300 ms per benchmark and can be
//! overridden with `CRITERION_SHIM_MS` (the figure-level benches regenerate
//! whole experiment grids per iteration, so CI keeps this small).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement window.
fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Iterations the harness asked for in this sample.
    iters: u64,
    /// Measured wall time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<D: Display>(name: &str, parameter: D) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Runs one benchmark closure adaptively and prints its per-iteration time.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let window = measure_window();
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration: double until one sample fills the window.
    let start = Instant::now();
    loop {
        f(&mut b);
        if b.elapsed >= window || start.elapsed() >= window.saturating_mul(4) {
            break;
        }
        b.iters = b.iters.saturating_mul(2);
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
    println!(
        "bench {name:<55} {per_iter:>12} ns/iter ({} iters)",
        b.iters
    );
}

/// The bench registry / runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility (builder form); the shim sizes
    /// samples by wall time.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(&name.into_label(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.into_label()), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    // By-value `id` mirrors the real criterion API this shim substitutes for.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_runs() {
        std::env::set_var("CRITERION_SHIM_MS", "1");
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0, "closure must actually run");
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).label, "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
