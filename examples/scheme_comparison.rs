//! Scheme comparison across core widths — a miniature of the paper's
//! Figures 1/7/8: IPC, timing and combined performance for every scheme on
//! all four BOOM configurations.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use shadowbinding::core::Scheme;
use shadowbinding::stats::{suite_ipc, BenchResult};
use shadowbinding::timing::{frequency_mhz, relative_timing};
use shadowbinding::uarch::{Core, CoreConfig};
use shadowbinding::workloads::{generate, spec2017_profiles, GeneratorKind};

fn main() {
    // A representative cross-section of the suite (memory-bound, compute-
    // bound, branchy, forwarding-heavy).
    let names = [
        "505.mcf",
        "538.imagick",
        "502.gcc",
        "548.exchange2",
        "503.bwaves",
    ];
    let profiles: Vec<_> = spec2017_profiles()
        .into_iter()
        .filter(|p| names.contains(&p.name))
        .collect();
    let ops = 20_000;

    println!(
        "{} micro-ops per point, {} generator, {} scheduler\n",
        ops,
        GeneratorKind::default(),
        CoreConfig::mega().scheduler,
    );
    println!(
        "{:<8} {:<12} {:>8} {:>9} {:>8} {:>12}",
        "config", "scheme", "IPC", "rel IPC", "MHz", "performance"
    );
    for config in CoreConfig::boom_sweep() {
        let mut baseline = 0.0;
        for scheme in Scheme::all() {
            let rows: Vec<BenchResult> = profiles
                .iter()
                .map(|p| {
                    let trace = generate(p, ops, 7);
                    let mut core = Core::with_scheme(config.clone(), scheme, trace);
                    let stats = core.run(100_000_000);
                    BenchResult::new(p.name, stats.committed.get(), stats.cycles.get())
                })
                .collect();
            let ipc = suite_ipc(&rows);
            if scheme == Scheme::Baseline {
                baseline = ipc;
            }
            let rel_ipc = ipc / baseline;
            let rel_t = relative_timing(&config, scheme);
            println!(
                "{:<8} {:<12} {:>8.3} {:>9.3} {:>8.1} {:>12.3}",
                config.name,
                scheme.label(),
                ipc,
                rel_ipc,
                frequency_mhz(&config, scheme),
                rel_ipc * rel_t,
            );
        }
        println!();
    }
    println!(
        "Performance = relative IPC x relative timing (§8.4). Note NDA overtaking \
         both STT variants at the widest configuration despite losing in IPC."
    );
}
