//! Quickstart: run one SPEC2017-like workload on the Mega BOOM under every
//! secure speculation scheme and compare IPC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use shadowbinding::core::Scheme;
use shadowbinding::uarch::{Core, CoreConfig};
use shadowbinding::workloads::{generate, spec2017_profiles, GeneratorKind};

fn main() {
    let profile = *spec2017_profiles()
        .iter()
        .find(|p| p.name == "502.gcc")
        .expect("gcc profile exists");
    let ops = 30_000;
    let config = CoreConfig::mega();
    println!(
        "workload: {} ({ops} micro-ops, {} generator), config: Mega BOOM \
         ({} scheduler)\n",
        profile.name,
        GeneratorKind::default(),
        config.scheduler,
    );

    let mut baseline_ipc = 0.0;
    for scheme in Scheme::all() {
        let trace = generate(&profile, ops, 42);
        let mut core = Core::with_scheme(config.clone(), scheme, trace);
        let stats = core.run(100_000_000);
        let ipc = stats.ipc();
        if scheme == Scheme::Baseline {
            baseline_ipc = ipc;
        }
        println!(
            "{:<12} IPC {:.3}  (normalized {:.3})  mispredicts {}  fwd-errors {}  \
             delayed transmitters {}",
            scheme.label(),
            ipc,
            ipc / baseline_ipc,
            stats.branch_mispredicts.get(),
            stats.forwarding_errors.get(),
            stats.delayed_transmitters.get(),
        );
    }
    println!(
        "\nSTT delays tainted transmitters only; NDA delays every dependent of a \
         speculative load (§3). See examples/scheme_comparison.rs for the full grid."
    );
}
