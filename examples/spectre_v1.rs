//! Spectre-v1 attack demo (the paper's §7 BOOM-attacks check): a
//! mispredicted bounds check transiently loads a secret and encodes it into
//! a cache probe array; a flush+reload observer tries to recover it.
//!
//! The unsafe baseline leaks the secret. STT-Rename, STT-Issue and NDA all
//! block the transmitting load, so the observer recovers nothing.
//!
//! ```sh
//! cargo run --release --example spectre_v1
//! ```

use shadowbinding::core::Scheme;
use shadowbinding::mem::SideChannelObserver;
use shadowbinding::uarch::{Core, CoreConfig};
use shadowbinding::workloads::{spectre_v1_kernel, ssb_kernel, PROBE_BASE, PROBE_STRIDE};

fn main() {
    let secret = 13usize;
    let observer = SideChannelObserver::new(PROBE_BASE, PROBE_STRIDE, 16);
    println!("victim secret: {secret}\n");

    println!("== Spectre v1 (C-shadow: mispredicted bounds check) ==");
    for scheme in Scheme::all() {
        let kernel = spectre_v1_kernel(secret);
        let mut core = Core::with_scheme(CoreConfig::mega(), scheme, kernel.trace);
        observer.prime(core.memory_mut());
        core.run(1_000_000);
        report(scheme.label(), observer.recover(core.memory()), secret);
    }

    println!("\n== Speculative Store Bypass (D-shadow: late store address) ==");
    for scheme in Scheme::all() {
        let kernel = ssb_kernel(secret);
        let mut core = Core::with_scheme(CoreConfig::mega(), scheme, kernel.trace);
        observer.prime(core.memory_mut());
        // The transient window closes at the forwarding-error flush; probe
        // there (the post-flush replay re-touches the literal address).
        while !core.is_done()
            && core.stats().forwarding_errors.get() == 0
            && core.cycle() < 1_000_000
        {
            core.step();
        }
        report(scheme.label(), observer.recover(core.memory()), secret);
    }
}

fn report(scheme: &str, recovered: Option<usize>, secret: usize) {
    match recovered {
        Some(v) if v == secret => {
            println!("{scheme:<12} LEAKED: attacker recovered {v} via the cache side channel");
        }
        Some(v) => println!("{scheme:<12} noisy channel (recovered {v}, not the secret)"),
        None => println!("{scheme:<12} blocked: probe array untouched"),
    }
}
