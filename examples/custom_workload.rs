//! Building a custom workload against the public API: hand-written kernels
//! with the trace builder, plus a custom profile for the generator — and a
//! look at the §9.2 exchange2 pathology with the split-store ablation.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use shadowbinding::core::{Scheme, SchemeConfig};
use shadowbinding::isa::{ArchReg, TraceBuilder};
use shadowbinding::uarch::{Core, CoreConfig};
use shadowbinding::workloads::{generate, AccessPattern, WorkloadProfile};

fn main() {
    hand_written_kernel();
    custom_profile();
}

/// A hand-written pointer-chase kernel through the trace builder.
fn hand_written_kernel() {
    let x = ArchReg::int;
    let mut b = TraceBuilder::new("hand-chase");
    for i in 0..2_000u64 {
        // Each load's address register is the previous load's destination.
        b.load(x(1), x(1), 0x1000_0000 + (i % 512) * 64, 8);
        b.alu(x(2), Some(x(1)), Some(x(2)));
    }
    let trace = b.build();
    println!("== hand-written pointer chase ({} uops) ==", trace.len());
    for scheme in Scheme::all() {
        let mut core = Core::with_scheme(CoreConfig::large(), scheme, trace.clone());
        let stats = core.run(50_000_000);
        println!("{:<12} IPC {:.3}", scheme.label(), stats.ipc());
    }
    println!();
}

/// A custom generator profile: a forwarding-heavy kernel in a tiny
/// footprint, run under STT-Rename with and without split store taints.
fn custom_profile() {
    let profile = WorkloadProfile {
        name: "custom.fwdheavy",
        load_frac: 0.25,
        store_frac: 0.15,
        branch_frac: 0.12,
        fp_frac: 0.0,
        mispredict_rate: 0.005,
        footprint: 16 * 1024,
        access: AccessPattern::Random,
        dep_serial: 0.25,
        load_use: 0.4,
        alias_rate: 0.5,
        store_data_from_load: 0.6,
        hot_frac: 1.0,
        addr_from_compute: 0.1,
    };
    let config = CoreConfig::mega();
    println!("== custom forwarding-heavy profile (§9.2 ablation) ==");
    for (label, split) in [("unified store taint", false), ("split store taints", true)] {
        let mut scheme_cfg = SchemeConfig::rtl(Scheme::SttRename, config.mem_ports);
        scheme_cfg.split_store_taints = split;
        let trace = generate(&profile, 20_000, 99);
        let mut core = Core::new(config.clone(), scheme_cfg, trace);
        let stats = core.run(100_000_000);
        println!(
            "STT-Rename ({label:<19}) IPC {:.3}  forwarding errors {}",
            stats.ipc(),
            stats.forwarding_errors.get()
        );
    }
}
